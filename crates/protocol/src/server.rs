//! The untrusted index server.
//!
//! The server hosts the ordered confidential index behind a pluggable
//! [`ListStore`] storage engine, authenticates users, enforces group-level
//! access control and answers ranged top-k requests by TRS order
//! (Section 5.2).  It never holds decryption keys.  All traffic is metered so
//! the bandwidth experiments can read exact byte counts.
//!
//! Serving architecture (this layer, on top of the storage engine):
//!
//! * **Sharded storage** — the default engine is a
//!   [`ShardedStore`](zerber_store::ShardedStore): merged lists partitioned
//!   across per-`RwLock` shards, so queries on different lists never contend
//!   and an insert write-locks a single shard.  Traffic counters are
//!   lock-free atomics.
//! * **Cursor sessions** — the first ranged request of a query opens a
//!   per-list cursor (a physical position in TRS order).  Follow-up requests
//!   (Section 5.2's doubling protocol) resume from the cursor instead of
//!   re-scanning the list from the top; the server closes the session when
//!   the list is exhausted.  Evicted or foreign cursors fall back to the
//!   stateless offset scan, so the responses are element-for-element
//!   identical either way.
//! * **Batched multi-term queries** — [`IndexServer::handle_query_batch`]
//!   authenticates once and serves all sub-requests through
//!   [`ListStore::fetch_ranged_many`], which visits each shard exactly once.
//! * **Cross-user batched scheduler** — [`IndexServer::handle_query_stream`]
//!   serves a whole round of requests from *different* users: each distinct
//!   user authenticates once per round, all fetches are bucketed by shard,
//!   and every shard bucket executes under a single lock acquisition
//!   (`ListStore::execute_shard_batch`).  `ServerStats` meters `batches`,
//!   `lock_acquisitions` and `auth_checks` so the amortization is visible.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use zerber_base::MergedListId;
use zerber_corpus::GroupId;
use zerber_r::{OrderedElement, OrderedIndex};
use zerber_store::{
    CursorId, DurableConfig, ListStore, RangedBatch, RangedFetch, SegmentStore, ShardedStore,
    SingleMutexStore, SpillConfig, SpillStore, StoreError, StoreJob,
};

use crate::acl::{AccessControl, AuthToken};
use crate::error::ProtocolError;
use crate::message::{QueryRequest, QueryResponse, WireElement, ELEMENT_HEADER_BYTES};
use crate::pool::{RoundStats, ShardWorkerPool};

/// Cumulative traffic and request counters (a point-in-time snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Number of query requests served (including follow-ups).
    pub requests_served: u64,
    /// Number of posting elements shipped to clients.
    pub elements_sent: u64,
    /// Bytes received from clients (requests + inserts).
    pub bytes_in: u64,
    /// Bytes sent to clients (responses).
    pub bytes_out: u64,
    /// Number of insert operations accepted.
    pub inserts_accepted: u64,
    /// Batch rounds served ([`IndexServer::handle_query_batch`] and
    /// [`IndexServer::handle_query_stream`] calls).
    pub batches: u64,
    /// Shard-lock acquisitions the storage engine performed on the serving
    /// paths (fetches, cursor operations, inserts and batch rounds); audit
    /// accessors are not metered.  This is what batching amortizes: a
    /// cross-user round takes one acquisition per touched shard instead of
    /// one per request.
    pub lock_acquisitions: u64,
    /// Token verifications (HMAC checks) the ACL performed.  The batched
    /// scheduler authenticates each distinct user once per round, so this
    /// grows by at most #distinct-users per batch instead of per request.
    pub auth_checks: u64,
    /// Pages the storage engine read back (and re-validated) from disk —
    /// non-zero only for the spill engine, where it measures how often the
    /// working set missed the resident budget and page cache.
    pub page_faults: u64,
    /// Pages the storage engine's page cache evicted.
    pub page_evictions: u64,
    /// Page reads the storage engine's page cache absorbed (no disk read).
    /// `page_cache_hits / (page_cache_hits + page_faults)` is the cache hit
    /// rate over this stats window.
    pub page_cache_hits: u64,
    /// Page-file compaction passes the storage engine completed: each one
    /// rewrote a shard's live pages into a fresh file and reclaimed the dead
    /// bytes stranded by rebuilds.
    pub compactions: u64,
    /// Spilled segments the storage engine promoted back into the resident
    /// tier because recent accesses earned them budget.
    pub promotions: u64,
    /// Resident segments the storage engine demoted to the page file because
    /// hotter segments claimed their budget.
    pub demotions: u64,
    /// Write-ahead-log records the durable engine appended for accepted
    /// inserts (0 for non-durable engines).
    pub wal_appends: u64,
    /// Write-ahead-log bytes the durable engine appended.
    pub wal_bytes: u64,
    /// Checkpoint pages the durable engine read back, re-validated and
    /// adopted when the store was recovered from disk.
    pub recovered_pages: u64,
    /// Torn or corrupt WAL tail records recovery discarded (the log was
    /// truncated at the last valid record and the store kept serving).
    pub truncated_wal_records: u64,
    /// Batch rounds executed on the shard worker pool (0 when the server
    /// runs the sequential in-thread scheduler).
    pub worker_rounds: u64,
    /// Pool buckets executed by a worker other than their home worker — how
    /// often work-stealing rebalanced a skewed round.
    pub stolen_buckets: u64,
    /// Jobs routed into executable buckets across all pool rounds (the
    /// numerator of [`ServerStats::mean_bucket_occupancy`]).
    pub round_jobs: u64,
    /// Buckets produced across all pool rounds (the denominator of
    /// [`ServerStats::mean_bucket_occupancy`]).
    pub round_buckets: u64,
    /// Largest bucket any pool round produced: how skewed the worst round
    /// was relative to the mean occupancy.
    pub max_bucket_jobs: u64,
    /// Replication frames the store received and applied (non-zero only
    /// when the server fronts a replica).
    pub frames_streamed: u64,
    /// Replication frames the replica's idempotent apply skipped as already
    /// applied — duplicates and post-reconnect retransmissions.
    pub frames_skipped: u64,
    /// Full snapshot re-bootstraps the replica performed because the WAL
    /// tail it needed was checkpointed away on the primary.
    pub resnapshots: u64,
    /// Transport reconnects the replica's catch-up loop performed (each one
    /// resumed from the last applied sequence after a backoff delay).
    pub reconnects: u64,
    /// Current replication lag in sequence numbers — the largest per-shard
    /// gap between the primary's last known head and the replica's applied
    /// sequence.  A gauge (point-in-time), not a delta-windowed counter.
    pub replica_lag: u64,
    /// Elements the storage engine individually examined for visibility
    /// accounting — the r-confidentiality filter work the scan-cost
    /// assertions bound (cached cursor follow-ups leave it untouched).
    pub visibility_scan_cost: u64,
    /// Estimated bytes of the engine's in-memory physical representation.
    /// A gauge (point-in-time), like the other byte footprints below.
    pub resident_bytes: u64,
    /// Bytes of index state spilled to secondary storage (0 for the
    /// in-memory engines).  A gauge.
    pub spilled_bytes: u64,
    /// Physical length of the on-disk page files backing the spilled state;
    /// exceeds [`ServerStats::spilled_bytes`] by the dead bytes interior
    /// rebuilds strand in the append-only files.  A gauge.
    pub page_file_bytes: u64,
    /// Dead (stranded) page-file bytes awaiting compaction.  A gauge.
    pub dead_page_bytes: u64,
}

impl ServerStats {
    /// Mean jobs per pool bucket across all worker rounds (0 when the pool
    /// never ran).  Together with [`ServerStats::max_bucket_jobs`] this
    /// describes round skew: a mean far below the max means most buckets
    /// were small while one shard soaked up the round.
    pub fn mean_bucket_occupancy(&self) -> f64 {
        if self.round_buckets == 0 {
            0.0
        } else {
            self.round_jobs as f64 / self.round_buckets as f64
        }
    }
}

/// Lock-free counters behind [`ServerStats`]: every worker thread bumps them
/// without serializing on a stats mutex.
#[derive(Debug, Default)]
struct AtomicStats {
    requests_served: AtomicU64,
    elements_sent: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    inserts_accepted: AtomicU64,
    batches: AtomicU64,
    auth_checks: AtomicU64,
    worker_rounds: AtomicU64,
    stolen_buckets: AtomicU64,
    round_jobs: AtomicU64,
    round_buckets: AtomicU64,
    max_bucket_jobs: AtomicU64,
    /// The store's lock meter at the last [`AtomicStats::reset`]; snapshots
    /// report the delta so `reset_stats` zeroes the whole struct.
    lock_baseline: AtomicU64,
    /// The store's page-fault meter at the last reset.
    fault_baseline: AtomicU64,
    /// The store's page-eviction meter at the last reset.
    eviction_baseline: AtomicU64,
    /// The store's page-cache-hit meter at the last reset.
    hit_baseline: AtomicU64,
    /// The store's compaction meter at the last reset.
    compaction_baseline: AtomicU64,
    /// The store's promotion meter at the last reset.
    promotion_baseline: AtomicU64,
    /// The store's demotion meter at the last reset.
    demotion_baseline: AtomicU64,
    /// The store's WAL-append meter at the last reset.
    wal_append_baseline: AtomicU64,
    /// The store's WAL-byte meter at the last reset.
    wal_byte_baseline: AtomicU64,
    /// The store's recovered-page meter at the last reset.
    recovered_page_baseline: AtomicU64,
    /// The store's truncated-WAL-record meter at the last reset.
    truncated_wal_baseline: AtomicU64,
    /// The store's streamed-frame meter at the last reset.
    frames_streamed_baseline: AtomicU64,
    /// The store's skipped-frame meter at the last reset.
    frames_skipped_baseline: AtomicU64,
    /// The store's re-snapshot meter at the last reset.
    resnapshot_baseline: AtomicU64,
    /// The store's reconnect meter at the last reset.
    reconnect_baseline: AtomicU64,
    /// The store's visibility-scan meter at the last reset.
    visibility_scan_baseline: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self, store: &dyn ListStore) -> ServerStats {
        ServerStats {
            requests_served: self.requests_served.load(Ordering::Relaxed),
            elements_sent: self.elements_sent.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            inserts_accepted: self.inserts_accepted.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            lock_acquisitions: store
                .lock_acquisitions()
                .saturating_sub(self.lock_baseline.load(Ordering::Relaxed)),
            auth_checks: self.auth_checks.load(Ordering::Relaxed),
            page_faults: store
                .page_faults()
                .saturating_sub(self.fault_baseline.load(Ordering::Relaxed)),
            page_evictions: store
                .page_evictions()
                .saturating_sub(self.eviction_baseline.load(Ordering::Relaxed)),
            page_cache_hits: store
                .page_cache_hits()
                .saturating_sub(self.hit_baseline.load(Ordering::Relaxed)),
            compactions: store
                .compactions()
                .saturating_sub(self.compaction_baseline.load(Ordering::Relaxed)),
            promotions: store
                .promotions()
                .saturating_sub(self.promotion_baseline.load(Ordering::Relaxed)),
            demotions: store
                .demotions()
                .saturating_sub(self.demotion_baseline.load(Ordering::Relaxed)),
            wal_appends: store
                .wal_appends()
                .saturating_sub(self.wal_append_baseline.load(Ordering::Relaxed)),
            wal_bytes: store
                .wal_bytes()
                .saturating_sub(self.wal_byte_baseline.load(Ordering::Relaxed)),
            recovered_pages: store
                .recovered_pages()
                .saturating_sub(self.recovered_page_baseline.load(Ordering::Relaxed)),
            truncated_wal_records: store
                .truncated_wal_records()
                .saturating_sub(self.truncated_wal_baseline.load(Ordering::Relaxed)),
            worker_rounds: self.worker_rounds.load(Ordering::Relaxed),
            stolen_buckets: self.stolen_buckets.load(Ordering::Relaxed),
            round_jobs: self.round_jobs.load(Ordering::Relaxed),
            round_buckets: self.round_buckets.load(Ordering::Relaxed),
            max_bucket_jobs: self.max_bucket_jobs.load(Ordering::Relaxed),
            frames_streamed: store
                .frames_streamed()
                .saturating_sub(self.frames_streamed_baseline.load(Ordering::Relaxed)),
            frames_skipped: store
                .frames_skipped()
                .saturating_sub(self.frames_skipped_baseline.load(Ordering::Relaxed)),
            resnapshots: store
                .resnapshots()
                .saturating_sub(self.resnapshot_baseline.load(Ordering::Relaxed)),
            reconnects: store
                .reconnects()
                .saturating_sub(self.reconnect_baseline.load(Ordering::Relaxed)),
            // Lag is a gauge: report the live value, not a reset-windowed
            // delta.
            replica_lag: store.replica_lag(),
            visibility_scan_cost: store
                .visibility_scan_cost()
                .saturating_sub(self.visibility_scan_baseline.load(Ordering::Relaxed)),
            // Byte footprints are gauges too: live values, never windowed.
            resident_bytes: store.resident_bytes() as u64,
            spilled_bytes: store.spilled_bytes() as u64,
            page_file_bytes: store.page_file_bytes() as u64,
            dead_page_bytes: store.dead_page_bytes() as u64,
        }
    }

    fn reset(&self, store: &dyn ListStore) {
        self.requests_served.store(0, Ordering::Relaxed);
        self.elements_sent.store(0, Ordering::Relaxed);
        self.bytes_in.store(0, Ordering::Relaxed);
        self.bytes_out.store(0, Ordering::Relaxed);
        self.inserts_accepted.store(0, Ordering::Relaxed);
        self.batches.store(0, Ordering::Relaxed);
        self.auth_checks.store(0, Ordering::Relaxed);
        self.worker_rounds.store(0, Ordering::Relaxed);
        self.stolen_buckets.store(0, Ordering::Relaxed);
        self.round_jobs.store(0, Ordering::Relaxed);
        self.round_buckets.store(0, Ordering::Relaxed);
        self.max_bucket_jobs.store(0, Ordering::Relaxed);
        self.lock_baseline
            .store(store.lock_acquisitions(), Ordering::Relaxed);
        self.fault_baseline
            .store(store.page_faults(), Ordering::Relaxed);
        self.eviction_baseline
            .store(store.page_evictions(), Ordering::Relaxed);
        self.hit_baseline
            .store(store.page_cache_hits(), Ordering::Relaxed);
        self.compaction_baseline
            .store(store.compactions(), Ordering::Relaxed);
        self.promotion_baseline
            .store(store.promotions(), Ordering::Relaxed);
        self.demotion_baseline
            .store(store.demotions(), Ordering::Relaxed);
        self.wal_append_baseline
            .store(store.wal_appends(), Ordering::Relaxed);
        self.wal_byte_baseline
            .store(store.wal_bytes(), Ordering::Relaxed);
        self.recovered_page_baseline
            .store(store.recovered_pages(), Ordering::Relaxed);
        self.truncated_wal_baseline
            .store(store.truncated_wal_records(), Ordering::Relaxed);
        self.frames_streamed_baseline
            .store(store.frames_streamed(), Ordering::Relaxed);
        self.frames_skipped_baseline
            .store(store.frames_skipped(), Ordering::Relaxed);
        self.resnapshot_baseline
            .store(store.resnapshots(), Ordering::Relaxed);
        self.reconnect_baseline
            .store(store.reconnects(), Ordering::Relaxed);
        self.visibility_scan_baseline
            .store(store.visibility_scan_cost(), Ordering::Relaxed);
    }

    fn record_worker_round(&self, round: &RoundStats) {
        self.worker_rounds.fetch_add(1, Ordering::Relaxed);
        self.stolen_buckets
            .fetch_add(round.stolen_buckets, Ordering::Relaxed);
        self.round_jobs.fetch_add(round.jobs, Ordering::Relaxed);
        self.round_buckets
            .fetch_add(round.buckets, Ordering::Relaxed);
        self.max_bucket_jobs
            .fetch_max(round.max_bucket_jobs, Ordering::Relaxed);
    }

    fn record_query(&self, request: &QueryRequest, response: &QueryResponse) {
        self.requests_served.fetch_add(1, Ordering::Relaxed);
        self.elements_sent
            .fetch_add(response.elements.len() as u64, Ordering::Relaxed);
        self.bytes_in
            .fetch_add(request.encoded_bytes() as u64, Ordering::Relaxed);
        self.bytes_out
            .fetch_add(response.encoded_bytes() as u64, Ordering::Relaxed);
    }
}

/// An insert request: the client has already sealed the payload and computed
/// the TRS with the published RSTF.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertRequest {
    /// The inserting user.
    pub user: String,
    /// Target merged posting list.
    pub list: u64,
    /// Group of the underlying document.
    pub group: GroupId,
    /// Transformed relevance score computed by the client.
    pub trs: f64,
    /// Sealed posting payload.
    pub ciphertext: Vec<u8>,
}

impl InsertRequest {
    /// Encoded size in bytes: user-name length + fixed header (8 list + 4
    /// group + 8 trs + 2 length prefix + 2 name prefix) + ciphertext.
    pub fn encoded_bytes(&self) -> usize {
        self.user.len() + 24 + self.ciphertext.len()
    }
}

/// Which storage engine a server is built on.
///
/// All engines answer element-for-element identically (they share one
/// cursor-session implementation); they differ in concurrency model and
/// physical layout, which is what the serving experiments compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreEngine {
    /// Lists sharded across per-`RwLock` tables, plain `Vec` layout (the
    /// default).
    Sharded,
    /// One global mutex around a single table (the contention baseline).
    SingleMutex,
    /// Sharded tables over compressed block-encoded segments with per-block
    /// skip entries (the memory-footprint engine).
    Segment,
    /// Sharded segment tables whose cold sealed segments spill to per-shard
    /// page files behind an LRU page cache (the beyond-RAM engine; page
    /// files live in a fresh temp directory removed when the server drops).
    Spill,
    /// The spill engine with the full durability machinery engaged:
    /// checkpoint manifests, per-shard write-ahead logging of inserts and
    /// crash recovery.  Rooted in a fresh temp directory (removed when the
    /// server drops); long-lived deployments build their store with
    /// [`SpillStore::create_durable`] and pass it to
    /// [`IndexServer::with_store`].
    Durable,
}

/// The index server.
#[derive(Debug)]
pub struct IndexServer {
    /// `Arc` (not `Box`) so batch rounds can hand the engine to the
    /// persistent shard workers without borrowing from the server.
    store: Arc<dyn ListStore>,
    acl: AccessControl,
    stats: AtomicStats,
    /// The shard worker pool executing batch rounds, when parallel serving
    /// is enabled ([`IndexServer::set_shard_workers`]); `None` runs rounds
    /// sequentially on the calling thread, exactly as before.
    pool: RwLock<Option<ShardWorkerPool>>,
}

/// Opaque per-user session tag binding cursors to the user who opened them
/// (FNV-1a over the user name; never 0 so it cannot collide with "no owner").
fn owner_tag(user: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in user.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash.max(1)
}

impl IndexServer {
    /// Creates a server from a built index and a user directory, using the
    /// default sharded storage engine.
    pub fn new(index: OrderedIndex, acl: AccessControl) -> Self {
        Self::with_store(Box::new(ShardedStore::new(index)), acl)
    }

    /// Creates a server over an explicit storage engine.
    pub fn with_store(store: Box<dyn ListStore>, acl: AccessControl) -> Self {
        IndexServer {
            store: Arc::from(store),
            acl,
            stats: AtomicStats::default(),
            pool: RwLock::new(None),
        }
    }

    /// Sets how many persistent shard workers execute batch rounds
    /// ([`IndexServer::handle_query_stream`]): `0` disables the pool and
    /// runs rounds sequentially on the calling thread (the default), `n > 0`
    /// spawns a pool of `n` workers with shard-affine queues and
    /// work-stealing.  Idempotent when the count is unchanged; otherwise the
    /// old pool (if any) is shut down and joined before the call returns.
    pub fn set_shard_workers(&self, workers: usize) {
        let mut slot = self.pool.write();
        match workers {
            0 => *slot = None,
            n if slot.as_ref().map(ShardWorkerPool::workers) == Some(n) => {}
            n => *slot = Some(ShardWorkerPool::new(n)),
        }
    }

    /// Number of shard workers batch rounds currently execute on (0 =
    /// sequential in-thread scheduling).
    pub fn shard_workers(&self) -> usize {
        self.pool
            .read()
            .as_ref()
            .map_or(0, ShardWorkerPool::workers)
    }

    /// Creates a server serializing every operation on one global mutex —
    /// the pre-sharding architecture, kept as the contention baseline.
    pub fn single_mutex(index: OrderedIndex, acl: AccessControl) -> Self {
        Self::with_store(Box::new(SingleMutexStore::new(index)), acl)
    }

    /// Creates a server over the compressed segment engine.
    pub fn segmented(index: OrderedIndex, acl: AccessControl) -> Result<Self, ProtocolError> {
        let store = SegmentStore::new(index).map_err(map_store_error)?;
        Ok(Self::with_store(Box::new(store), acl))
    }

    /// Creates a server over the selected engine, sharded across
    /// `num_shards` storage shards where the engine supports sharding.
    /// Fails only when the engine itself cannot be built (a segment payload
    /// overflow, or the spill engine's page files cannot be created).
    pub fn with_engine(
        index: OrderedIndex,
        acl: AccessControl,
        engine: StoreEngine,
        num_shards: usize,
    ) -> Result<Self, ProtocolError> {
        let store: Box<dyn ListStore> = match engine {
            StoreEngine::Sharded => Box::new(ShardedStore::with_shards(index, num_shards)),
            StoreEngine::SingleMutex => Box::new(SingleMutexStore::new(index)),
            StoreEngine::Segment => {
                Box::new(SegmentStore::with_shards(index, num_shards).map_err(map_store_error)?)
            }
            StoreEngine::Spill => Box::new(
                SpillStore::in_temp_dir(index, num_shards, SpillConfig::default())
                    .map_err(map_store_error)?,
            ),
            StoreEngine::Durable => Box::new(
                SpillStore::durable_in_temp_dir(
                    index,
                    num_shards,
                    SpillConfig::default(),
                    DurableConfig::default(),
                )
                .map_err(map_store_error)?,
            ),
        };
        Ok(Self::with_store(store, acl))
    }

    /// The storage engine serving this server.
    pub fn store(&self) -> &dyn ListStore {
        self.store.as_ref()
    }

    /// The merge plan of the hosted index.
    pub fn plan(&self) -> &zerber_base::MergePlan {
        self.store.plan()
    }

    /// Read-only access to the user directory.
    pub fn acl(&self) -> &AccessControl {
        &self.acl
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot(self.store.as_ref())
    }

    /// Resets the traffic counters (used between experiment phases).
    pub fn reset_stats(&self) {
        self.stats.reset(self.store.as_ref());
    }

    /// Verifies a token through the ACL, metering the check: the batched
    /// scheduler routes every authentication through here so `auth_checks`
    /// counts actual HMAC verifications, not requests.
    fn authenticate(&self, user: &str, token: &AuthToken) -> Result<Vec<GroupId>, ProtocolError> {
        self.stats.auth_checks.fetch_add(1, Ordering::Relaxed);
        self.acl.authenticate(user, token)
    }

    /// Number of merged posting lists hosted.
    pub fn num_lists(&self) -> usize {
        self.store.num_lists()
    }

    /// Total number of posting elements hosted.
    pub fn num_elements(&self) -> usize {
        self.store.num_elements()
    }

    /// Total bytes the server stores for the index.
    pub fn stored_bytes(&self) -> usize {
        self.store.stored_bytes()
    }

    /// Number of currently open cursor sessions.
    pub fn open_cursors(&self) -> usize {
        self.store.open_cursors()
    }

    fn validate(request: &QueryRequest) -> Result<(), ProtocolError> {
        if request.count == 0 || request.k == 0 {
            return Err(ProtocolError::InvalidRequest(
                "count and k must be greater than 0".into(),
            ));
        }
        Ok(())
    }

    /// Serves one validated, authenticated request against the store.
    /// `try_resume` is false only on the stream scheduler's stale-cursor
    /// fallback, where the shard round already proved the cursor dead —
    /// retrying it here would pay a second lock for a guaranteed failure.
    fn serve(
        &self,
        request: &QueryRequest,
        groups: &[GroupId],
        prefetched: Option<RangedBatch>,
        try_resume: bool,
    ) -> Result<QueryResponse, ProtocolError> {
        let list = MergedListId(request.list);
        let owner = owner_tag(&request.user);
        let count = request.count as usize;

        // Resume the cursor session if the client presents a live one;
        // unknown / evicted / foreign cursors fall back to the offset scan.
        let resumed = if try_resume && request.cursor != 0 && prefetched.is_none() {
            self.store
                .cursor_fetch(CursorId(request.cursor), owner, count, Some(groups))
                .ok()
        } else {
            None
        };

        let (batch, session) = match resumed {
            Some(batch) => (batch, CursorId(request.cursor)),
            None => {
                let batch = match prefetched {
                    Some(batch) => batch,
                    None => self
                        .store
                        .fetch_ranged(
                            &RangedFetch {
                                list,
                                offset: request.offset as usize,
                                count,
                            },
                            Some(groups),
                        )
                        .map_err(map_store_error)?,
                };
                // Sessions open lazily, on the first follow-up (a non-zero
                // offset, or a cursor the store evicted): one-shot initial
                // queries — the common case — stay entirely on the shard
                // read lock and never touch the session table.
                let follow_up = request.offset > 0 || request.cursor != 0;
                let session = if batch.exhausted || !follow_up {
                    CursorId::NONE
                } else {
                    // `delivered` lets the store re-derive the position if a
                    // concurrent insert moved the list between the fetch and
                    // this open (generation mismatch).
                    let delivered = request.offset as usize + batch.elements.len();
                    self.store
                        .open_cursor(list, owner, &batch, delivered, Some(groups))
                        .unwrap_or(CursorId::NONE)
                };
                (batch, session)
            }
        };

        Ok(self.finish(request, owner, batch, session))
    }

    /// Builds and meters the response for a served batch, closing the
    /// session when the scan exhausted the list.
    fn finish(
        &self,
        request: &QueryRequest,
        owner: u64,
        batch: RangedBatch,
        session: CursorId,
    ) -> QueryResponse {
        let cursor = if batch.exhausted {
            if session.is_some() {
                self.store.close_cursor(session, owner);
            }
            0
        } else {
            session.0
        };
        let elements: Vec<WireElement> = batch
            .elements
            .iter()
            .map(WireElement::from_element)
            .collect();
        let response = QueryResponse {
            elements,
            visible_total: batch.visible_total as u64,
            cursor,
        };
        self.stats.record_query(request, &response);
        response
    }

    /// Handles one (initial or follow-up) query request.
    ///
    /// The response contains up to `request.count` elements of the list in
    /// descending TRS order, restricted to the groups the user belongs to,
    /// starting at the cursor position (if a session is presented) or at
    /// `request.offset`.
    pub fn handle_query(
        &self,
        request: &QueryRequest,
        token: &AuthToken,
    ) -> Result<QueryResponse, ProtocolError> {
        Self::validate(request)?;
        let groups = self.authenticate(&request.user, token)?;
        self.serve(request, &groups, None, true)
    }

    /// Handles a batch of query requests from one user (the initial round of
    /// a multi-term query).  Authentication happens once and the storage
    /// engine visits each shard exactly once for the whole batch.
    ///
    /// The outer `Result` covers whole-batch failures (empty or mixed-user
    /// batches, malformed parameters, authentication); the inner results
    /// align with the input order and carry per-request errors, so one stale
    /// list id degrades that request alone — exactly as if every request had
    /// been served (and metered) individually.
    pub fn handle_query_batch(
        &self,
        requests: &[QueryRequest],
        token: &AuthToken,
    ) -> Result<Vec<Result<QueryResponse, ProtocolError>>, ProtocolError> {
        let first = requests
            .first()
            .ok_or_else(|| ProtocolError::InvalidRequest("empty batch".into()))?;
        for request in requests {
            Self::validate(request)?;
            if request.user != first.user {
                return Err(ProtocolError::InvalidRequest(
                    "batch requests must come from one user".into(),
                ));
            }
        }
        let groups = self.authenticate(&first.user, token)?;
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        // Cursor-less requests go through the shard-batched path; resumptions
        // (unusual inside a batch) are served individually.
        let plain: Vec<usize> = (0..requests.len())
            .filter(|&i| requests[i].cursor == 0)
            .collect();
        let plain_fetches: Vec<RangedFetch> = plain
            .iter()
            .map(|&i| RangedFetch {
                list: MergedListId(requests[i].list),
                offset: requests[i].offset as usize,
                count: requests[i].count as usize,
            })
            .collect();
        let mut prefetched: Vec<Option<Result<RangedBatch, StoreError>>> =
            (0..requests.len()).map(|_| None).collect();
        for (&i, result) in plain
            .iter()
            .zip(self.store.fetch_ranged_many(&plain_fetches, Some(&groups)))
        {
            prefetched[i] = Some(result);
        }
        Ok(requests
            .iter()
            .zip(prefetched)
            .map(|(request, prefetched)| match prefetched {
                Some(Ok(batch)) => self.serve(request, &groups, Some(batch), true),
                Some(Err(e)) => Err(map_store_error(e)),
                None => self.serve(request, &groups, None, true),
            })
            .collect())
    }

    /// Serves a cross-user batch of requests — the batched shard scheduler.
    ///
    /// Unlike [`IndexServer::handle_query_batch`] (one user's multi-term
    /// round), a stream round mixes requests from arbitrary users, so each
    /// entry carries its own token.  The scheduler
    ///
    /// 1. authenticates each distinct `(user, token)` pair **once** per
    ///    round instead of once per request,
    /// 2. buckets all fetches — across users — by storage shard,
    /// 3. executes each shard bucket under a **single** lock acquisition
    ///    (`ListStore::execute_shard_batch`; the single-mutex engine
    ///    degenerates to one lock for the whole round) — sequentially on
    ///    the calling thread by default, or concurrently on the persistent
    ///    shard worker pool when [`IndexServer::set_shard_workers`] enabled
    ///    one — and
    /// 4. reassembles responses in input order with per-request error
    ///    isolation: a stale cursor, failed authentication or unknown list
    ///    degrades that request alone, never the batch.
    ///
    /// Live cursor sessions are resumed inside the shard round; a cursor the
    /// store evicted falls back to the stateless offset scan, exactly like
    /// [`IndexServer::handle_query`].  Responses and metering are
    /// request-for-request identical to serving the stream sequentially.
    pub fn handle_query_stream(
        &self,
        requests: &[(QueryRequest, AuthToken)],
    ) -> Vec<Result<QueryResponse, ProtocolError>> {
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        // A round of one is the request itself: serve it on the per-query
        // fast path so an unbatched stream costs exactly what
        // `handle_query` costs.
        if let [(request, token)] = requests {
            return vec![Self::validate(request)
                .and_then(|()| self.authenticate(&request.user, token))
                .and_then(|groups| self.serve(request, &groups, None, true))];
        }
        // Authenticate each distinct (user, token) once.  `arena` owns the
        // group sets behind `Arc`s so the shard jobs below can share them
        // with the worker pool without copying per request.
        let mut arena: Vec<Arc<[GroupId]>> = Vec::new();
        let mut cache: HashMap<(&str, &AuthToken), Result<usize, ProtocolError>> = HashMap::new();
        let mut prepared: Vec<Result<usize, ProtocolError>> = Vec::with_capacity(requests.len());
        for (request, token) in requests {
            // Validate before authenticating, like the sequential path: a
            // malformed request is rejected without paying an HMAC check.
            prepared.push(Self::validate(request).and_then(|()| {
                cache
                    .entry((request.user.as_str(), token))
                    .or_insert_with(|| {
                        self.authenticate(&request.user, token).map(|groups| {
                            arena.push(Arc::from(groups));
                            arena.len() - 1
                        })
                    })
                    .clone()
            }));
        }
        // One shard job per authenticated request: live cursors resume
        // inside the round, everything else is a fresh ranged fetch.
        let jobs: Vec<StoreJob> = requests
            .iter()
            .zip(&prepared)
            .filter_map(|((request, _), auth)| {
                let groups = Some(Arc::clone(&arena[*auth.as_ref().ok()?]));
                Some(if request.cursor != 0 {
                    StoreJob::resume_shared(
                        CursorId(request.cursor),
                        owner_tag(&request.user),
                        request.count as usize,
                        groups,
                    )
                } else {
                    StoreJob::ranged_shared(
                        RangedFetch {
                            list: MergedListId(request.list),
                            offset: request.offset as usize,
                            count: request.count as usize,
                        },
                        groups,
                    )
                })
            })
            .collect();
        // With a worker pool, the round's buckets execute concurrently on
        // the persistent shard workers; without one, sequentially right
        // here.  Either way results come back aligned with the job order
        // and metering is identical.
        let output = {
            let pool = self.pool.read();
            match pool.as_ref() {
                Some(pool) => {
                    let (output, round) = pool.execute(&self.store, jobs);
                    self.stats.record_worker_round(&round);
                    output
                }
                None => self.store.execute_shard_batch(&jobs),
            }
        };
        let mut outcomes = output.results.into_iter();
        requests
            .iter()
            .zip(prepared)
            .map(|((request, _), auth)| {
                let groups = &arena[auth?];
                let outcome = outcomes.next().ok_or_else(|| {
                    ProtocolError::Core(
                        "internal invariant: every prepared request has a job".into(),
                    )
                })?;
                match outcome {
                    Ok(batch) if request.cursor != 0 => {
                        // The round resumed a live session.
                        Ok(self.finish(
                            request,
                            owner_tag(&request.user),
                            batch,
                            CursorId(request.cursor),
                        ))
                    }
                    Ok(batch) => self.serve(request, groups, Some(batch), true),
                    Err(StoreError::UnknownCursor(_)) if request.cursor != 0 => {
                        // Evicted or foreign cursor: fall back to the
                        // stateless offset scan, like the single-query path
                        // (without retrying the resume the round just saw
                        // fail).
                        self.serve(request, groups, None, false)
                    }
                    Err(e) => Err(map_store_error(e)),
                }
            })
            .collect()
    }

    /// Closes a cursor session early (a client that got its `k` results
    /// before exhausting the list releases the session).  Only the session's
    /// own user can close it — cursor ids are sequential and guessable, so
    /// the owner check stops one user from tearing down another's session.
    pub fn close_cursor(&self, cursor: u64, user: &str) {
        if cursor != 0 {
            self.store.close_cursor(CursorId(cursor), owner_tag(user));
        }
    }

    /// Handles an insert: checks the user may write to the document's group,
    /// then places the sealed element at its TRS position.  Open cursors on
    /// the list are shifted so follow-ups neither skip nor repeat elements.
    pub fn handle_insert(
        &self,
        request: &InsertRequest,
        token: &AuthToken,
    ) -> Result<(), ProtocolError> {
        self.stats.auth_checks.fetch_add(1, Ordering::Relaxed);
        self.acl.check_member(&request.user, token, request.group)?;
        if !(0.0..=1.0).contains(&request.trs) || !request.trs.is_finite() {
            return Err(ProtocolError::InvalidRequest(format!(
                "TRS must lie in [0,1], got {}",
                request.trs
            )));
        }
        let element = OrderedElement {
            trs: request.trs,
            group: request.group,
            sealed: zerber_base::EncryptedElement {
                group: request.group,
                ciphertext: request.ciphertext.clone(),
            },
        };
        self.store
            .insert(MergedListId(request.list), element)
            .map_err(map_store_error)?;
        self.stats.inserts_accepted.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_in
            .fetch_add(request.encoded_bytes() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Average bytes per element on the wire (header + sealed payload);
    /// useful for the Section 6.6 style bandwidth table.
    pub fn avg_wire_element_bytes(&self) -> f64 {
        let n = self.store.num_elements();
        if n == 0 {
            return 0.0;
        }
        let total = n * ELEMENT_HEADER_BYTES + self.store.ciphertext_bytes();
        total as f64 / n as f64
    }
}

fn map_store_error(e: StoreError) -> ProtocolError {
    match e {
        StoreError::UnknownList(id) => ProtocolError::UnknownList(id),
        StoreError::UnknownCursor(id) => {
            ProtocolError::InvalidRequest(format!("unknown cursor {id}"))
        }
        // A segment failing validation is a server-side integrity fault,
        // not client misuse.
        StoreError::CorruptSegment(reason) => {
            ProtocolError::Core(format!("corrupt segment: {reason}"))
        }
        StoreError::SegmentOverflow => {
            ProtocolError::Core("segment payload exceeds the u32 offset bound".into())
        }
        StoreError::Io(reason) => ProtocolError::Core(format!("spill storage I/O: {reason}")),
        StoreError::RecoveryFailed(reason) => {
            ProtocolError::Core(format!("store recovery refused: {reason}"))
        }
        // A broken internal invariant degrades the one request instead of
        // the whole process.
        StoreError::Invariant(what) => {
            ProtocolError::Core(format!("internal invariant violated: {what}"))
        }
        // The typed retry-on-primary signal: a replica past its staleness
        // bound degrades the request instead of serving stale data.
        StoreError::Degraded { lag, max_lag } => ProtocolError::Degraded { lag, max_lag },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerber_base::{BfmMerge, ConfidentialityParam, MergeScheme, PostingPayload};
    use zerber_corpus::{sample_split, Corpus, CorpusBuilder, CorpusStats, Document, SplitConfig};
    use zerber_crypto::{DeterministicRng, GroupKeys, MasterKey};
    use zerber_r::{RstfConfig, RstfModel};

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        for i in 0..60 {
            let group = GroupId((i % 2) as u32);
            b.add_document(Document::new(
                format!("d{i}"),
                group,
                format!(
                    "shared term{} report imclone {} filler words here",
                    i % 9,
                    "data ".repeat(i % 5 + 1)
                ),
            ))
            .unwrap();
        }
        b.build()
    }

    fn server_fixture() -> (Corpus, IndexServer, MasterKey, RstfModel) {
        let c = corpus();
        let stats = CorpusStats::compute(&c);
        let split = sample_split(&c, SplitConfig::default()).unwrap();
        let model = RstfModel::train(&c, &split, &RstfConfig::default()).unwrap();
        let plan = BfmMerge
            .plan(&stats, ConfidentialityParam::new(3.0).unwrap())
            .unwrap();
        let master = MasterKey::new([5u8; 32]);
        let index = zerber_r::OrderedIndex::build(&c, plan, &model, &master, 7).unwrap();
        let mut acl = AccessControl::new(b"srv");
        acl.register_user("john", &[GroupId(0), GroupId(1)]);
        acl.register_user("alice", &[GroupId(1)]);
        (c, IndexServer::new(index, acl), master, model)
    }

    fn list_for(c: &Corpus, server: &IndexServer, term_name: &str) -> u64 {
        let term = c.dictionary().get(term_name).unwrap();
        server.plan().list_of(term).unwrap().0
    }

    fn request(user: &str, list: u64, offset: u64, count: u32, k: u32) -> QueryRequest {
        QueryRequest {
            user: user.into(),
            list,
            offset,
            cursor: 0,
            count,
            k,
        }
    }

    #[test]
    fn authenticated_query_returns_ordered_accessible_elements() {
        let (c, server, _, _) = server_fixture();
        let token = server.acl().issue_token("john");
        let list = list_for(&c, &server, "imclone");
        let resp = server
            .handle_query(&request("john", list, 0, 10, 10), &token)
            .unwrap();
        assert!(!resp.elements.is_empty());
        assert!(resp.elements.windows(2).all(|w| w[0].trs >= w[1].trs));
        let stats = server.stats();
        assert_eq!(stats.requests_served, 1);
        assert_eq!(stats.elements_sent, resp.elements.len() as u64);
        assert!(stats.bytes_out > 0);
    }

    #[test]
    fn acl_restricts_which_groups_are_returned() {
        let (c, server, _, _) = server_fixture();
        let token = server.acl().issue_token("alice");
        let list = list_for(&c, &server, "imclone");
        let resp = server
            .handle_query(&request("alice", list, 0, 1000, 10), &token)
            .unwrap();
        assert!(resp.elements.iter().all(|e| e.group == GroupId(1)));
    }

    #[test]
    fn bad_tokens_and_bad_requests_are_rejected() {
        let (c, server, _, _) = server_fixture();
        let list = list_for(&c, &server, "imclone");
        let forged = AuthToken([9u8; 32]);
        let req = request("john", list, 0, 10, 10);
        assert!(server.handle_query(&req, &forged).is_err());
        let token = server.acl().issue_token("john");
        assert!(server
            .handle_query(
                &QueryRequest {
                    count: 0,
                    ..req.clone()
                },
                &token
            )
            .is_err());
        assert!(server
            .handle_query(
                &QueryRequest {
                    list: 99_999,
                    ..req
                },
                &token
            )
            .is_err());
        assert_eq!(server.stats().requests_served, 0);
    }

    #[test]
    fn cursor_sessions_resume_follow_ups_and_close_on_exhaustion() {
        let (c, server, _, _) = server_fixture();
        let token = server.acl().issue_token("john");
        let list = list_for(&c, &server, "imclone");
        // Stateless reference: scan the whole list by offsets.
        let all = server
            .handle_query(&request("john", list, 0, 10_000, 10), &token)
            .unwrap();
        assert_eq!(all.cursor, 0, "an exhausting response carries no cursor");
        // Cursor walk in steps of 3 must deliver the same sequence.  The
        // session opens lazily on the first follow-up; once open it keeps
        // its id until exhaustion closes it.
        let mut collected = Vec::new();
        let mut cursor = 0u64;
        let mut visible = u64::MAX;
        let mut session_seen = 0u64;
        while (collected.len() as u64) < visible {
            let req = QueryRequest {
                cursor,
                ..request("john", list, collected.len() as u64, 3, 10)
            };
            let resp = server.handle_query(&req, &token).unwrap();
            visible = resp.visible_total;
            if collected.is_empty() {
                assert_eq!(resp.cursor, 0, "initial requests open no session");
            }
            if cursor != 0 && resp.cursor != 0 {
                assert_eq!(resp.cursor, cursor, "sessions keep their id");
            }
            if resp.cursor != 0 {
                session_seen = resp.cursor;
            }
            if resp.elements.is_empty() {
                break;
            }
            collected.extend(resp.elements.iter().cloned());
            cursor = resp.cursor;
        }
        assert_eq!(collected, all.elements);
        assert_ne!(session_seen, 0, "follow-ups open a session");
        assert_eq!(server.open_cursors(), 0, "exhausted sessions are closed");
    }

    #[test]
    fn foreign_cursors_fall_back_to_the_offset_scan() {
        let (c, server, _, _) = server_fixture();
        let john = server.acl().issue_token("john");
        let list = list_for(&c, &server, "imclone");
        let initial = server
            .handle_query(&request("john", list, 0, 2, 10), &john)
            .unwrap();
        assert_eq!(initial.cursor, 0, "sessions open lazily");
        let follow = server
            .handle_query(&request("john", list, 2, 2, 10), &john)
            .unwrap();
        assert_ne!(follow.cursor, 0, "the first follow-up opens the session");
        // Alice presents John's cursor: the server must not resume his
        // session, but serve her offset scan (with her ACL view).
        let alice = server.acl().issue_token("alice");
        let resp = server
            .handle_query(
                &QueryRequest {
                    cursor: follow.cursor,
                    ..request("alice", list, 0, 2, 10)
                },
                &alice,
            )
            .unwrap();
        assert!(resp.elements.iter().all(|e| e.group == GroupId(1)));
        // The fallback opened a session of Alice's own; release it.
        server.close_cursor(resp.cursor, "alice");
        // Alice cannot close John's session either.
        server.close_cursor(follow.cursor, "alice");
        assert_eq!(server.open_cursors(), 1);
        server.close_cursor(follow.cursor, "john");
        assert_eq!(server.open_cursors(), 0);
        // Closing is idempotent and unknown cursors are ignored.
        server.close_cursor(follow.cursor, "john");
        server.close_cursor(0, "john");
    }

    #[test]
    fn batch_queries_match_individual_queries_and_meter_identically() {
        let (_c, server, _, _) = server_fixture();
        let token = server.acl().issue_token("john");
        let lists: Vec<u64> = (0..server.num_lists() as u64).take(5).collect();
        let requests: Vec<QueryRequest> =
            lists.iter().map(|&l| request("john", l, 0, 4, 4)).collect();
        let batched: Vec<QueryResponse> = server
            .handle_query_batch(&requests, &token)
            .unwrap()
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        let batched_stats = server.stats();
        server.reset_stats();
        let individual: Vec<QueryResponse> = requests
            .iter()
            .map(|r| server.handle_query(r, &token).unwrap())
            .collect();
        for (a, b) in batched.iter().zip(&individual) {
            assert_eq!(a.elements, b.elements);
            assert_eq!(a.visible_total, b.visible_total);
        }
        // Traffic metering is identical; the amortization counters are where
        // the batch is cheaper (one auth, at most one lock per shard).
        let sequential_stats = server.stats();
        assert_eq!(
            batched_stats.requests_served,
            sequential_stats.requests_served
        );
        assert_eq!(batched_stats.elements_sent, sequential_stats.elements_sent);
        assert_eq!(batched_stats.bytes_in, sequential_stats.bytes_in);
        assert_eq!(batched_stats.bytes_out, sequential_stats.bytes_out);
        assert_eq!(batched_stats.batches, 1);
        assert_eq!(sequential_stats.batches, 0);
        assert_eq!(batched_stats.auth_checks, 1);
        assert_eq!(sequential_stats.auth_checks, requests.len() as u64);
        // At most one lock per touched shard, never more than sequential.
        assert!(batched_stats.lock_acquisitions <= sequential_stats.lock_acquisitions);
        // Error paths: empty batches and mixed users are rejected outright.
        assert!(server.handle_query_batch(&[], &token).is_err());
        let mixed = vec![
            request("john", lists[0], 0, 4, 4),
            request("alice", lists[0], 0, 4, 4),
        ];
        assert!(server.handle_query_batch(&mixed, &token).is_err());
        // A stale list id degrades only its own sub-request.
        let partial = vec![
            request("john", lists[0], 0, 4, 4),
            request("john", 99_999, 0, 4, 4),
        ];
        let results = server.handle_query_batch(&partial, &token).unwrap();
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(ProtocolError::UnknownList(_))));
    }

    #[test]
    fn stream_batch_takes_one_lock_and_one_auth_per_user() {
        let c = corpus();
        let stats = CorpusStats::compute(&c);
        let split = sample_split(&c, SplitConfig::default()).unwrap();
        let model = RstfModel::train(&c, &split, &RstfConfig::default()).unwrap();
        let plan = BfmMerge
            .plan(&stats, ConfidentialityParam::new(3.0).unwrap())
            .unwrap();
        let master = MasterKey::new([5u8; 32]);
        let index = zerber_r::OrderedIndex::build(&c, plan, &model, &master, 7).unwrap();
        let mut acl = AccessControl::new(b"srv");
        let users: Vec<String> = (0..4).map(|i| format!("u{i}")).collect();
        for u in &users {
            acl.register_user(u, &[GroupId(0), GroupId(1)]);
        }
        for engine in [
            StoreEngine::Sharded,
            StoreEngine::SingleMutex,
            StoreEngine::Segment,
            StoreEngine::Spill,
            StoreEngine::Durable,
        ] {
            let server = IndexServer::with_engine(index.clone(), acl.clone(), engine, 4).unwrap();
            let list = list_for(&c, &server, "imclone");
            // 64 requests, 4 distinct users, all against one merged list —
            // a single-shard round.
            let round: Vec<(QueryRequest, AuthToken)> = (0..64)
                .map(|i| {
                    let user = &users[i % users.len()];
                    (request(user, list, 0, 4, 4), server.acl().issue_token(user))
                })
                .collect();
            server.reset_stats();
            let results = server.handle_query_stream(&round);
            assert!(results.iter().all(|r| r.is_ok()), "engine {engine:?}");
            let stats = server.stats();
            assert_eq!(stats.requests_served, 64);
            assert_eq!(stats.batches, 1);
            // One list => one shard => exactly one lock for all 64 requests.
            assert_eq!(stats.lock_acquisitions, 1, "engine {engine:?}");
            // One HMAC verification per distinct user, not per request.
            assert_eq!(stats.auth_checks, users.len() as u64);
        }
    }

    #[test]
    fn durable_engine_meters_wal_activity_through_server_stats() {
        let c = corpus();
        let stats = CorpusStats::compute(&c);
        let split = sample_split(&c, SplitConfig::default()).unwrap();
        let model = RstfModel::train(&c, &split, &RstfConfig::default()).unwrap();
        let plan = BfmMerge
            .plan(&stats, ConfidentialityParam::new(3.0).unwrap())
            .unwrap();
        let master = MasterKey::new([5u8; 32]);
        let index = zerber_r::OrderedIndex::build(&c, plan, &model, &master, 7).unwrap();
        let mut acl = AccessControl::new(b"srv");
        acl.register_user("alice", &[GroupId(1)]);
        let server = IndexServer::with_engine(index, acl, StoreEngine::Durable, 2).unwrap();
        assert_eq!(server.stats().wal_appends, 0);
        assert_eq!(server.stats().truncated_wal_records, 0);
        let term = c.dictionary().get("imclone").unwrap();
        let list = list_for(&c, &server, "imclone");
        let payload = PostingPayload {
            term,
            doc: zerber_corpus::DocId(7_000),
            tf: 5,
            doc_len: 10,
        };
        let keys: GroupKeys = master.group_keys(1);
        let mut rng = DeterministicRng::from_u64(3);
        let sealed = zerber_base::EncryptedElement::seal(
            &payload,
            GroupId(1),
            &keys,
            MergedListId(list),
            &mut rng,
        )
        .unwrap();
        let req = InsertRequest {
            user: "alice".into(),
            list,
            group: GroupId(1),
            trs: model.transform(term, payload.doc, payload.relevance()),
            ciphertext: sealed.ciphertext,
        };
        let alice = server.acl().issue_token("alice");
        server.handle_insert(&req, &alice).unwrap();
        let stats = server.stats();
        assert_eq!(stats.inserts_accepted, 1);
        assert_eq!(stats.wal_appends, 1, "each accepted insert is logged");
        assert!(stats.wal_bytes > 0);
        // Stats windows reset like every other storage meter.
        server.reset_stats();
        assert_eq!(server.stats().wal_appends, 0);
        assert_eq!(server.stats().wal_bytes, 0);
    }

    #[test]
    fn stream_responses_match_sequential_queries_with_error_isolation() {
        let (c, server, _, _) = server_fixture();
        let list = list_for(&c, &server, "imclone");
        let john = server.acl().issue_token("john");
        let alice = server.acl().issue_token("alice");
        // Open a live session for john, then resume it inside the round.
        server
            .handle_query(&request("john", list, 0, 2, 10), &john)
            .unwrap();
        let follow = server
            .handle_query(&request("john", list, 2, 2, 10), &john)
            .unwrap();
        assert_ne!(follow.cursor, 0);
        let round = vec![
            (request("john", list, 0, 3, 10), john.clone()),
            (request("alice", list, 0, 3, 10), alice.clone()),
            (
                QueryRequest {
                    cursor: follow.cursor,
                    ..request("john", list, 4, 2, 10)
                },
                john.clone(),
            ),
            (request("john", 99_999, 0, 3, 10), john.clone()),
            (
                QueryRequest {
                    cursor: 0xdead_beef << 8,
                    ..request("alice", list, 0, 2, 10)
                },
                alice.clone(),
            ),
            (request("john", list, 0, 3, 10), AuthToken([9u8; 32])),
            (
                QueryRequest {
                    count: 0,
                    ..request("alice", list, 0, 1, 1)
                },
                alice.clone(),
            ),
        ];
        let results = server.handle_query_stream(&round);
        assert_eq!(results.len(), round.len());
        // Fresh ranged requests answer exactly like the sequential path,
        // each under its own user's ACL view.
        let expect_john = server
            .handle_query(&request("john", list, 0, 3, 10), &john)
            .unwrap();
        let expect_alice = server
            .handle_query(&request("alice", list, 0, 3, 10), &alice)
            .unwrap();
        let r0 = results[0].as_ref().unwrap();
        assert_eq!(r0.elements, expect_john.elements);
        assert_eq!(r0.visible_total, expect_john.visible_total);
        let r1 = results[1].as_ref().unwrap();
        assert_eq!(r1.elements, expect_alice.elements);
        assert_eq!(r1.visible_total, expect_alice.visible_total);
        // The live cursor resumed from its position (4 delivered elements).
        let r2 = results[2].as_ref().unwrap();
        let expect_resume = server
            .handle_query(&request("john", list, 4, 2, 10), &john)
            .unwrap();
        assert_eq!(r2.elements, expect_resume.elements);
        // Errors stay contained to their own request.
        assert!(matches!(results[3], Err(ProtocolError::UnknownList(_))));
        // A bogus cursor falls back to the stateless offset scan.
        let r4 = results[4].as_ref().unwrap();
        let expect_fallback = server
            .handle_query(&request("alice", list, 0, 2, 10), &alice)
            .unwrap();
        assert_eq!(r4.elements, expect_fallback.elements);
        assert!(matches!(
            results[5],
            Err(ProtocolError::AuthenticationFailed(_))
        ));
        assert!(matches!(results[6], Err(ProtocolError::InvalidRequest(_))));
        // An empty round is a no-op, not an error.
        assert!(server.handle_query_stream(&[]).is_empty());
    }

    #[test]
    fn insert_requires_group_membership_and_valid_trs() {
        let (c, server, master, model) = server_fixture();
        let term = c.dictionary().get("imclone").unwrap();
        let list = list_for(&c, &server, "imclone");
        let payload = PostingPayload {
            term,
            doc: zerber_corpus::DocId(7_000),
            tf: 5,
            doc_len: 10,
        };
        let keys: GroupKeys = master.group_keys(1);
        let mut rng = DeterministicRng::from_u64(3);
        let sealed = zerber_base::EncryptedElement::seal(
            &payload,
            GroupId(1),
            &keys,
            MergedListId(list),
            &mut rng,
        )
        .unwrap();
        let trs = model.transform(term, payload.doc, payload.relevance());
        let req = InsertRequest {
            user: "alice".into(),
            list,
            group: GroupId(1),
            trs,
            ciphertext: sealed.ciphertext.clone(),
        };
        let alice = server.acl().issue_token("alice");
        let before = server.num_elements();
        server.handle_insert(&req, &alice).unwrap();
        assert_eq!(server.num_elements(), before + 1);
        assert_eq!(server.stats().inserts_accepted, 1);

        // Alice is not in group 0: inserting there must fail.
        let denied = InsertRequest {
            group: GroupId(0),
            ..req.clone()
        };
        assert!(matches!(
            server.handle_insert(&denied, &alice),
            Err(ProtocolError::AccessDenied { .. })
        ));
        // Out-of-range TRS is rejected.
        let bad_trs = InsertRequest { trs: 1.5, ..req };
        assert!(server.handle_insert(&bad_trs, &alice).is_err());
    }

    #[test]
    fn inserted_elements_are_visible_to_subsequent_queries() {
        let (c, server, master, model) = server_fixture();
        let term = c.dictionary().get("imclone").unwrap();
        let list = list_for(&c, &server, "imclone");
        let keys = master.group_keys(0);
        let mut rng = DeterministicRng::from_u64(4);
        let payload = PostingPayload {
            term,
            doc: zerber_corpus::DocId(8_000),
            tf: 9,
            doc_len: 10,
        };
        let sealed = zerber_base::EncryptedElement::seal(
            &payload,
            GroupId(0),
            &keys,
            MergedListId(list),
            &mut rng,
        )
        .unwrap();
        let trs = model.transform(term, payload.doc, payload.relevance());
        let john = server.acl().issue_token("john");
        server
            .handle_insert(
                &InsertRequest {
                    user: "john".into(),
                    list,
                    group: GroupId(0),
                    trs,
                    ciphertext: sealed.ciphertext,
                },
                &john,
            )
            .unwrap();
        // A very high relevance (0.9) should appear in the head of the list.
        let resp = server
            .handle_query(&request("john", list, 0, 5, 5), &john)
            .unwrap();
        let mut found = false;
        for e in &resp.elements {
            if e.group == GroupId(0) {
                let opened = zerber_base::EncryptedElement {
                    group: e.group,
                    ciphertext: e.ciphertext.clone(),
                }
                .open(&keys, MergedListId(list));
                if let Ok(p) = opened {
                    if p.doc == zerber_corpus::DocId(8_000) {
                        found = true;
                    }
                }
            }
        }
        assert!(
            found,
            "freshly inserted high-score element should be in the top-5"
        );
    }

    #[test]
    fn stats_reset_and_size_accessors_work() {
        let (c, server, _, _) = server_fixture();
        let token = server.acl().issue_token("john");
        let list = list_for(&c, &server, "imclone");
        server
            .handle_query(&request("john", list, 0, 3, 3), &token)
            .unwrap();
        assert!(server.stats().bytes_out > 0);
        server.reset_stats();
        // Counters rewind to zero; the byte-footprint gauges keep reporting
        // the live store state and are exempt from the window reset.
        let after = server.stats();
        let gauges = ServerStats {
            resident_bytes: after.resident_bytes,
            spilled_bytes: after.spilled_bytes,
            page_file_bytes: after.page_file_bytes,
            dead_page_bytes: after.dead_page_bytes,
            ..ServerStats::default()
        };
        assert_eq!(after, gauges);
        assert!(after.resident_bytes > 0, "live footprint survives reset");
        assert!(server.num_lists() > 0);
        assert!(server.stored_bytes() > 0);
        assert!(server.avg_wire_element_bytes() > 40.0);
    }

    #[test]
    fn sharded_and_single_mutex_servers_answer_identically() {
        let c = corpus();
        let stats = CorpusStats::compute(&c);
        let split = sample_split(&c, SplitConfig::default()).unwrap();
        let model = RstfModel::train(&c, &split, &RstfConfig::default()).unwrap();
        let plan = BfmMerge
            .plan(&stats, ConfidentialityParam::new(3.0).unwrap())
            .unwrap();
        let master = MasterKey::new([5u8; 32]);
        let index = zerber_r::OrderedIndex::build(&c, plan, &model, &master, 7).unwrap();
        let mut acl = AccessControl::new(b"srv");
        acl.register_user("john", &[GroupId(0), GroupId(1)]);
        let sharded = IndexServer::with_store(
            Box::new(ShardedStore::with_shards(index.clone(), 4)),
            acl.clone(),
        );
        let single = IndexServer::single_mutex(index, acl);
        let token = sharded.acl().issue_token("john");
        for list in 0..sharded.num_lists() as u64 {
            for offset in [0u64, 2, 7] {
                let req = request("john", list, offset, 5, 5);
                let a = sharded.handle_query(&req, &token).unwrap();
                let b = single.handle_query(&req, &token).unwrap();
                // Session ids may differ; the payload must not.
                assert_eq!(a.elements, b.elements);
                assert_eq!(a.visible_total, b.visible_total);
            }
        }
        assert_eq!(sharded.stats(), single.stats());
    }
}
