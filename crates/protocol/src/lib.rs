//! Client / untrusted-server query protocol for the Zerber+R reproduction.
//!
//! This crate simulates the deployment of Sections 2, 4.1 and 5.2:
//!
//! * [`acl`] — user authentication (HMAC bearer tokens) and group membership
//!   checks performed by the index server,
//! * [`message`] — the wire format of query/insert requests and responses
//!   with exact byte accounting,
//! * [`server`] — the untrusted [`server::IndexServer`]: hosts the ordered
//!   confidential index behind a pluggable `zerber_store::ListStore` engine
//!   (sharded by default), serves ranged TRS-ordered fetches with resumable
//!   cursor sessions, accepts inserts, and meters all traffic in lock-free
//!   counters,
//! * [`client`] — the group member: issues the initial request of size `b`,
//!   decrypts and filters, resumes the server-side cursor with doubling
//!   follow-up requests, and inserts new documents using the published RSTF,
//! * [`replication`] — the framed wire format of the primary→replica
//!   replication stream (snapshot fetch + WAL tail polls), CRC-guarded so
//!   a socket transport can replace the in-process seam without touching
//!   the replication logic,
//! * [`pool`] — the persistent [`pool::ShardWorkerPool`]: N shard workers
//!   with affinity queues and work-stealing that execute a batched round's
//!   shard buckets concurrently instead of sequentially on the scheduler
//!   thread,
//! * [`netsim`] — the 56 Kb/s-client / 100 Mb/s-server network model, the
//!   snippet/competitor constants of Section 6.6, and the load generators
//!   for the serving-engine throughput experiments: the per-query
//!   thread-pool driver and the pipelined driver
//!   ([`netsim::drive_pipelined_queries`]), whose workers enqueue into a
//!   bounded submission queue drained in cross-user batched rounds.

pub mod acl;
pub mod client;
pub mod error;
pub mod message;
pub mod netsim;
pub mod pool;
pub mod replication;
pub mod server;

pub use acl::{AccessControl, AuthToken};
pub use client::{Client, ClientQueryOutcome};
pub use error::ProtocolError;
pub use message::{QueryRequest, QueryResponse, WireElement, ELEMENT_HEADER_BYTES};
pub use netsim::{
    drive_client_queries, drive_pipelined_queries, drive_raw_queries, LoadConfig, NetworkModel,
    PipelineConfig, ResponseBreakdown, ThroughputReport, ALTAVISTA_TOP10_BYTES, GOOGLE_TOP10_BYTES,
    PAPER_POSTING_BITS, SNIPPET_BYTES, YAHOO_TOP10_BYTES,
};
pub use pool::{RoundStats, ShardWorkerPool};
pub use replication::{ReplicationRequest, ReplicationResponse};
pub use server::{IndexServer, InsertRequest, ServerStats, StoreEngine};
