//! A persistent pool of shard workers executing batch rounds concurrently.
//!
//! The batched scheduler used to run a round's shard buckets sequentially on
//! the scheduler thread: one bucket after the other, each taking only its own
//! shard's lock but never overlapping with the next.  [`ShardWorkerPool`]
//! keeps N worker threads alive across rounds and fans a round's buckets out
//! to them, so buckets of different shards genuinely overlap on multi-core
//! hosts while the lock/auth amortization of batching is preserved.
//!
//! Scheduling is affinity-first with work-stealing:
//!
//! * every bucket has a *home* queue, `bucket.shard % workers`, so repeated
//!   rounds keep a shard's buckets on the same worker (warm path);
//! * an idle worker first drains its own queue front-to-back, then steals
//!   from the back of the longest foreign queue, so a skewed round — most
//!   buckets hitting one shard — spreads across the pool instead of
//!   serializing behind one worker.
//!
//! The pool is built on std [`Mutex`]/[`Condvar`] only (no channel crate):
//! one mutex guards the queues, one condvar wakes idle workers, and each
//! round carries its own sink condvar the caller blocks on until every
//! bucket of the round has landed.  Workers drain any queued buckets before
//! honoring shutdown, and [`Drop`] joins every worker, so dropping the pool
//! (or the server owning it) never strands a round.
//!
//! A panic inside a bucket (a poisoned store invariant, say) is caught per
//! bucket: the worker stays alive, the bucket's jobs fail with a synthetic
//! [`StoreError::Io`], and the round still completes — mirroring the
//! per-request error isolation of the sequential scheduler.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use zerber_store::{
    ListStore, RangedBatch, ShardBatchOutput, ShardJobBucket, StoreError, StoreJob,
};

/// How many buckets the round planner aims to produce per worker: small
/// enough to amortize queue traffic, large enough that stealing has slack to
/// rebalance a skewed round.
const BUCKETS_PER_WORKER: usize = 4;

/// Locks a mutex, shrugging off poisoning: a worker that panicked inside a
/// bucket already converted the damage into per-job errors, and every
/// structure behind these mutexes stays consistent across unwind points.
///
/// Pool mutexes rank *below* every store and shard lock (see
/// `zerber_store::lockrank`): scheduling state must never be taken while a
/// shard is held, or a stalled worker could wedge the whole round.  The
/// check is transient (not held for the guard's lifetime) because these
/// guards are handed raw to `Condvar::wait`; pool mutexes never nest among
/// themselves, so a held-rank entry would add nothing.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    zerber_store::lockrank::check(zerber_store::LockClass::Pool, 0);
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn wait<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar
        .wait(guard)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Counters describing one pool round, for [`crate::ServerStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Jobs routed into executable buckets this round.
    pub jobs: u64,
    /// Buckets the round was split into.
    pub buckets: u64,
    /// Size of the round's largest bucket.
    pub max_bucket_jobs: u64,
    /// Buckets executed by a worker other than their home worker.
    pub stolen_buckets: u64,
}

/// Where a round's bucket results land.  The caller blocks on `done` until
/// `remaining` hits zero; workers scatter results under the `results` mutex.
struct RoundSink {
    results: Mutex<Vec<Option<Result<RangedBatch, StoreError>>>>,
    lock_acquisitions: AtomicU64,
    stolen_buckets: AtomicU64,
    remaining: Mutex<usize>,
    done: Condvar,
}

/// One queued unit of work: a bucket plus everything needed to execute it.
struct Task {
    store: Arc<dyn ListStore>,
    jobs: Arc<[StoreJob]>,
    bucket: ShardJobBucket,
    sink: Arc<RoundSink>,
}

struct PoolState {
    /// Per-worker affinity queues; `queues[w]` is worker `w`'s home queue.
    queues: Vec<VecDeque<Task>>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when work arrives or shutdown is requested.
    work_ready: Condvar,
}

/// A fixed-size pool of persistent shard workers (see the module docs).
pub struct ShardWorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl std::fmt::Debug for ShardWorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardWorkerPool")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl ShardWorkerPool {
    /// Spawns `workers` persistent worker threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queues: (0..workers).map(|_| VecDeque::new()).collect(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("shard-worker-{me}"))
                    .spawn(move || worker_loop(&shared, me))
                    // analyze::allow(panic): pool construction runs at server
                    // startup, not on a serving path — failing to spawn OS
                    // threads leaves nothing to degrade to
                    .expect("spawning a shard worker thread")
            })
            .collect();
        ShardWorkerPool {
            shared,
            handles,
            workers,
        }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes one batch round on the pool: plans the round via
    /// [`ListStore::plan_shard_batch`] with a cap that yields roughly
    /// [`BUCKETS_PER_WORKER`] buckets per worker, fans the buckets out, and
    /// blocks until every bucket has landed.  Results come back aligned with
    /// the input job order, exactly like
    /// [`ListStore::execute_shard_batch`].
    pub fn execute(
        &self,
        store: &Arc<dyn ListStore>,
        jobs: Vec<StoreJob>,
    ) -> (ShardBatchOutput, RoundStats) {
        let cap = jobs
            .len()
            .div_ceil(self.workers * BUCKETS_PER_WORKER)
            .max(1);
        let plan = store.plan_shard_batch(&jobs, cap);
        let mut round = RoundStats {
            jobs: plan.routed_jobs() as u64,
            buckets: plan.buckets.len() as u64,
            max_bucket_jobs: plan.max_bucket_jobs() as u64,
            stolen_buckets: 0,
        };
        let mut slots: Vec<Option<Result<RangedBatch, StoreError>>> =
            (0..jobs.len()).map(|_| None).collect();
        for (index, error) in plan.unroutable {
            slots[index] = Some(Err(error));
        }
        if plan.buckets.is_empty() {
            return (assemble(slots, 0), round);
        }

        let jobs: Arc<[StoreJob]> = Arc::from(jobs);
        let sink = Arc::new(RoundSink {
            results: Mutex::new(slots),
            lock_acquisitions: AtomicU64::new(0),
            stolen_buckets: AtomicU64::new(0),
            remaining: Mutex::new(plan.buckets.len()),
            done: Condvar::new(),
        });
        {
            let mut state = lock(&self.shared.state);
            for bucket in plan.buckets {
                let home = bucket.shard % self.workers;
                state.queues[home].push_back(Task {
                    store: Arc::clone(store),
                    jobs: Arc::clone(&jobs),
                    bucket,
                    sink: Arc::clone(&sink),
                });
            }
        }
        self.shared.work_ready.notify_all();

        let mut remaining = lock(&sink.remaining);
        while *remaining > 0 {
            remaining = wait(&sink.done, remaining);
        }
        drop(remaining);

        round.stolen_buckets = sink.stolen_buckets.load(Ordering::Relaxed);
        let locks = sink.lock_acquisitions.load(Ordering::Relaxed);
        let slots = std::mem::take(&mut *lock(&sink.results));
        (assemble(slots, locks), round)
    }
}

impl Drop for ShardWorkerPool {
    fn drop(&mut self) {
        {
            let mut state = lock(&self.shared.state);
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for handle in self.handles.drain(..) {
            // A worker only panics outside the per-bucket catch_unwind,
            // i.e. in the queue machinery itself; surfacing that via the
            // join result would abort a drop, so swallow it here.
            let _ = handle.join();
        }
    }
}

fn assemble(
    slots: Vec<Option<Result<RangedBatch, StoreError>>>,
    lock_acquisitions: u64,
) -> ShardBatchOutput {
    ShardBatchOutput {
        results: slots
            .into_iter()
            .map(|slot| {
                slot.unwrap_or(Err(StoreError::Invariant(
                    "every job is routed, unroutable, or bucket-filled",
                )))
            })
            .collect(),
        lock_acquisitions,
    }
}

fn worker_loop(shared: &PoolShared, me: usize) {
    loop {
        let (task, stolen) = {
            let mut state = lock(&shared.state);
            loop {
                if let Some(task) = state.queues[me].pop_front() {
                    break (task, false);
                }
                let victim = (0..state.queues.len())
                    .filter(|&w| w != me && !state.queues[w].is_empty())
                    .max_by_key(|&w| state.queues[w].len());
                // The victim was checked non-empty under this same lock, so
                // the pop yields a task; if it somehow did not, fall through
                // and re-scan instead of panicking.
                if let Some(task) = victim.and_then(|v| state.queues[v].pop_back()) {
                    break (task, true);
                }
                // Only exit once every queue is drained, so a shutdown
                // racing a round in flight still completes the round.
                if state.shutdown {
                    return;
                }
                state = wait(&shared.work_ready, state);
            }
        };
        run_task(task, stolen);
    }
}

fn run_task(task: Task, stolen: bool) {
    let Task {
        store,
        jobs,
        bucket,
        sink,
    } = task;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        store.execute_shard_bucket(&jobs, &bucket)
    }));
    let (results, locks) = match outcome {
        Ok(output) => (output.results, output.lock_acquisitions),
        Err(_) => (
            bucket
                .jobs
                .iter()
                .map(|_| {
                    Err(StoreError::Io(
                        "shard worker panicked executing a bucket".into(),
                    ))
                })
                .collect::<Vec<_>>(),
            0,
        ),
    };
    {
        let mut slots = lock(&sink.results);
        for (&index, result) in bucket.jobs.iter().zip(results) {
            slots[index] = Some(result);
        }
    }
    sink.lock_acquisitions.fetch_add(locks, Ordering::Relaxed);
    if stolen {
        sink.stolen_buckets.fetch_add(1, Ordering::Relaxed);
    }
    // Decrement under the mutex the caller waits on, so the notify can never
    // slip between its check and its wait.
    let mut remaining = lock(&sink.remaining);
    *remaining -= 1;
    if *remaining == 0 {
        sink.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerber_base::{BfmMerge, ConfidentialityParam, MergeScheme, MergedListId};
    use zerber_corpus::{sample_split, CorpusBuilder, CorpusStats, Document, GroupId, SplitConfig};
    use zerber_crypto::MasterKey;
    use zerber_r::{OrderedIndex, RstfConfig, RstfModel};
    use zerber_store::{RangedFetch, ShardedStore};

    fn store(num_shards: usize) -> Arc<dyn ListStore> {
        let mut b = CorpusBuilder::new();
        for i in 0..60 {
            let group = GroupId((i % 2) as u32);
            b.add_document(Document::new(
                format!("d{i}"),
                group,
                format!(
                    "shared term{} report imclone {} filler words here",
                    i % 9,
                    "data ".repeat(i % 5 + 1)
                ),
            ))
            .unwrap();
        }
        let c = b.build();
        let stats = CorpusStats::compute(&c);
        let split = sample_split(&c, SplitConfig::default()).unwrap();
        let model = RstfModel::train(&c, &split, &RstfConfig::default()).unwrap();
        let plan = BfmMerge
            .plan(&stats, ConfidentialityParam::new(3.0).unwrap())
            .unwrap();
        let master = MasterKey::new([5u8; 32]);
        let index = OrderedIndex::build(&c, plan, &model, &master, 7).unwrap();
        Arc::new(ShardedStore::with_shards(index, num_shards))
    }

    fn ranged(list: u64, count: usize) -> StoreJob {
        StoreJob::ranged(
            RangedFetch {
                list: MergedListId(list),
                offset: 0,
                count,
            },
            None,
        )
    }

    #[test]
    fn pool_round_matches_sequential_execution() {
        let store = store(4);
        let lists = store.plan().num_lists() as u64;
        let pool = ShardWorkerPool::new(3);
        let jobs: Vec<StoreJob> = (0..32).map(|i| ranged(i % lists, 3)).collect();
        let sequential = store.execute_shard_batch(&jobs);
        let (pooled, round) = pool.execute(&store, jobs);
        assert_eq!(pooled.results.len(), sequential.results.len());
        for (p, s) in pooled.results.iter().zip(sequential.results.iter()) {
            assert_eq!(p.as_ref().unwrap(), s.as_ref().unwrap());
        }
        assert_eq!(round.jobs, 32);
        assert!(round.buckets >= 1);
        assert!(round.max_bucket_jobs >= 1);
    }

    #[test]
    fn unknown_lists_fail_per_job_without_stalling_the_round() {
        let store = store(2);
        let bogus = store.plan().num_lists() as u64 + 999;
        let pool = ShardWorkerPool::new(2);
        let jobs = vec![ranged(0, 2), ranged(bogus, 2), ranged(1, 2)];
        let (output, round) = pool.execute(&store, jobs);
        assert!(output.results[0].is_ok());
        assert!(matches!(
            output.results[1],
            Err(StoreError::UnknownList(id)) if id == bogus
        ));
        assert!(output.results[2].is_ok());
        assert_eq!(round.jobs, 2);
    }

    #[test]
    fn empty_round_completes_without_touching_workers() {
        let store = store(2);
        let pool = ShardWorkerPool::new(2);
        let (output, round) = pool.execute(&store, Vec::new());
        assert!(output.results.is_empty());
        assert_eq!(output.lock_acquisitions, 0);
        assert_eq!(round, RoundStats::default());
    }

    #[test]
    fn drop_joins_workers_even_with_rounds_just_finished() {
        let store = store(4);
        let lists = store.plan().num_lists() as u64;
        for _ in 0..50 {
            let pool = ShardWorkerPool::new(4);
            let jobs: Vec<StoreJob> = (0..16).map(|i| ranged(i % lists, 2)).collect();
            let (output, _) = pool.execute(&store, jobs);
            assert_eq!(output.results.len(), 16);
            drop(pool);
        }
    }
}
