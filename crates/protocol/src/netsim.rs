//! Network and presentation model for the bandwidth analysis of Section 6.6,
//! plus the thread-pool load generator that drives the index server for the
//! serving-engine throughput experiments.
//!
//! The paper's intranet setup: "users connect over a mobile device with a
//! 56 Kb/s modem, while servers use 100 Mb/s LAN connections"; document
//! snippets are delivered as XML, "on average, each snippet contains about
//! 250 B including XML formatting"; Google/Altavista/Yahoo top-10 responses
//! are quoted at 15 KB / 37 KB / 59 KB for comparison.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};
use zerber_corpus::{GroupId, TermId};
use zerber_crypto::GroupKeys;
use zerber_r::RetrievalConfig;

use crate::acl::AuthToken;
use crate::client::Client;
use crate::error::ProtocolError;
use crate::message::QueryRequest;
use crate::server::IndexServer;

/// Average size of one result snippet including XML framing (bytes).
pub const SNIPPET_BYTES: usize = 250;
/// Google's top-10 response size quoted in the paper (bytes).
pub const GOOGLE_TOP10_BYTES: usize = 15 * 1024;
/// Altavista's top-10 response size quoted in the paper (bytes).
pub const ALTAVISTA_TOP10_BYTES: usize = 37 * 1024;
/// Yahoo's top-10 response size quoted in the paper (bytes).
pub const YAHOO_TOP10_BYTES: usize = 59 * 1024;
/// The 64-bit posting-element encoding assumed by the paper's arithmetic.
pub const PAPER_POSTING_BITS: usize = 64;

/// Link and latency parameters of the simulated deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Downstream bandwidth of the client link in bits per second.
    pub client_down_bps: f64,
    /// Upstream bandwidth of the client link in bits per second.
    pub client_up_bps: f64,
    /// Server LAN bandwidth in bits per second.
    pub server_bps: f64,
    /// Round-trip time between client and server in seconds.
    pub rtt_seconds: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::paper_intranet()
    }
}

impl NetworkModel {
    /// The setup of Section 6.6: 56 Kb/s modem client, 100 Mb/s LAN server,
    /// a GPRS-ish 300 ms round trip.
    pub fn paper_intranet() -> Self {
        NetworkModel {
            client_down_bps: 56_000.0,
            client_up_bps: 33_600.0,
            server_bps: 100_000_000.0,
            rtt_seconds: 0.3,
        }
    }

    /// Seconds needed to move `bytes` over a link of `bps` bits per second.
    pub fn transfer_seconds(bytes: usize, bps: f64) -> f64 {
        if bps <= 0.0 {
            return f64::INFINITY;
        }
        (bytes as f64) * 8.0 / bps
    }

    /// Client-perceived latency of a query exchange: one round trip per
    /// request plus upstream request bytes plus downstream response bytes.
    pub fn query_latency_seconds(
        &self,
        requests: usize,
        bytes_sent: usize,
        bytes_received: usize,
    ) -> f64 {
        self.rtt_seconds * requests as f64
            + Self::transfer_seconds(bytes_sent, self.client_up_bps)
            + Self::transfer_seconds(bytes_received, self.client_down_bps)
    }

    /// How many queries per second one server link can sustain given the
    /// average response size in bytes (the paper estimates ~750 queries/s for
    /// its ODP workload).
    pub fn server_queries_per_second(&self, avg_response_bytes: f64) -> f64 {
        if avg_response_bytes <= 0.0 {
            return f64::INFINITY;
        }
        self.server_bps / (avg_response_bytes * 8.0)
    }
}

/// Breakdown of a complete top-k answer delivered to the user, following the
/// accounting of Section 6.6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResponseBreakdown {
    /// Bytes of encrypted posting elements shipped for the query.
    pub posting_bytes: usize,
    /// Bytes of result snippets for the final top-k documents.
    pub snippet_bytes: usize,
}

impl ResponseBreakdown {
    /// Builds the breakdown from element count, per-element wire size and k.
    pub fn new(elements: usize, bytes_per_element: usize, k: usize) -> Self {
        ResponseBreakdown {
            posting_bytes: elements * bytes_per_element,
            snippet_bytes: k * SNIPPET_BYTES,
        }
    }

    /// Breakdown using the paper's 64-bit element encoding.
    pub fn with_paper_elements(elements: usize, k: usize) -> Self {
        Self::new(elements, PAPER_POSTING_BITS / 8, k)
    }

    /// Total response size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.posting_bytes + self.snippet_bytes
    }

    /// Ratio of this response to a competitor's quoted top-10 size.
    pub fn ratio_to(&self, competitor_bytes: usize) -> f64 {
        if competitor_bytes == 0 {
            return f64::INFINITY;
        }
        self.total_bytes() as f64 / competitor_bytes as f64
    }
}

/// Configuration of one load-generation run against an [`IndexServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadConfig {
    /// Number of worker threads in the pool.
    pub threads: usize,
    /// Queries each worker issues.
    pub queries_per_thread: usize,
    /// The `k` of every query (also used as the initial response size `b`).
    pub k: usize,
}

impl LoadConfig {
    /// A load of `threads` workers with paper-default `k = b = 10`.
    pub fn for_threads(threads: usize) -> Self {
        LoadConfig {
            threads: threads.max(1),
            queries_per_thread: 100,
            k: 10,
        }
    }
}

/// Aggregate outcome of one load-generation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Worker threads used.
    pub threads: usize,
    /// Total queries completed across all workers.
    pub queries: u64,
    /// Wall-clock duration of the run in seconds.
    pub elapsed_seconds: f64,
    /// Wall-clock seconds the scheduler spent blocked waiting for
    /// submissions (0 for the per-query drivers, which have no scheduler).
    /// Producer-bound pipelined runs rack this up without serving anything.
    pub scheduler_wait_seconds: f64,
    /// Completed queries per second of *serving* time — elapsed time minus
    /// the scheduler's idle wait, so a pipelined measurement reports how
    /// fast the server drains rounds, not how fast workers produce them.
    /// For the per-query drivers this is plain wall-clock throughput.
    pub queries_per_second: f64,
    /// Posting elements shipped by the server during the run.
    pub elements_sent: u64,
}

fn report(
    threads: usize,
    queries: u64,
    elapsed_seconds: f64,
    scheduler_wait_seconds: f64,
    elements_sent: u64,
) -> ThroughputReport {
    // The wait is a sub-measurement of the same clock interval, so it can
    // only exceed `elapsed` by timer noise; clamp rather than divide by a
    // negative sliver.
    let serving_seconds = (elapsed_seconds - scheduler_wait_seconds).max(0.0);
    ThroughputReport {
        threads,
        queries,
        elapsed_seconds,
        scheduler_wait_seconds,
        queries_per_second: if serving_seconds > 0.0 {
            queries as f64 / serving_seconds
        } else {
            f64::INFINITY
        },
        elements_sent,
    }
}

/// Drives raw ranged queries against the server from a pool of
/// `config.threads` worker threads, measuring server-side serving throughput
/// (no client-side decryption).  Every worker authenticates as one of
/// `users` (which must be registered in the server's ACL) and rotates
/// through `lists`.
pub fn drive_raw_queries(
    server: &IndexServer,
    users: &[String],
    lists: &[u64],
    config: &LoadConfig,
) -> Result<ThroughputReport, ProtocolError> {
    if users.is_empty() || lists.is_empty() {
        return Err(ProtocolError::InvalidRequest(
            "load generation needs at least one user and one list".into(),
        ));
    }
    let elements_before = server.stats().elements_sent;
    let start = Instant::now();
    let queries: u64 = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..config.threads)
            .map(|w| {
                scope.spawn(move || -> Result<u64, ProtocolError> {
                    let user = &users[w % users.len()];
                    let token = server.acl().issue_token(user);
                    let mut served = 0u64;
                    for i in 0..config.queries_per_thread {
                        // Unit stride with a per-worker offset: every worker
                        // cycles through all lists regardless of their count
                        // (a fixed non-unit stride degenerates whenever it
                        // divides `lists.len()`).
                        let list = lists[(w.wrapping_mul(31) + i) % lists.len()];
                        let request = QueryRequest {
                            user: user.clone(),
                            list,
                            offset: 0,
                            cursor: 0,
                            count: config.k as u32,
                            k: config.k as u32,
                        };
                        let response = server.handle_query(&request, &token)?;
                        server.close_cursor(response.cursor, user);
                        served += 1;
                    }
                    Ok(served)
                })
            })
            .collect();
        workers
            .into_iter()
            // analyze::allow(panic): join fails only if the worker already
            // panicked; re-panicking the load harness preserves that bug
            // instead of reporting a bogus throughput number
            .map(|w| w.join().expect("load worker must not panic"))
            .sum::<Result<u64, ProtocolError>>()
    })?;
    let elapsed = start.elapsed().as_secs_f64();
    let elements = server.stats().elements_sent - elements_before;
    Ok(report(config.threads, queries, elapsed, 0.0, elements))
}

/// Configuration of one pipelined load-generation run: worker threads
/// enqueue initial requests into a bounded submission queue and a scheduler
/// thread drains it in rounds of up to `batch_size` requests, serving each
/// round through [`IndexServer::handle_query_stream`] — the cross-user
/// batched scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Submitting worker threads.
    pub workers: usize,
    /// Queries each worker submits.
    pub queries_per_worker: usize,
    /// Maximum requests the scheduler drains per round (1 = no batching:
    /// every request is its own round, reproducing the per-query path).
    pub batch_size: usize,
    /// Capacity of the bounded submission queue; workers block when full so
    /// the scheduler can never fall arbitrarily behind.
    pub queue_capacity: usize,
    /// The `k` of every query (also the response size `b`).
    pub k: usize,
    /// Shard workers executing each round's buckets: `0` (the default)
    /// serves rounds sequentially on the scheduler thread, `n > 0` installs
    /// a persistent [`crate::ShardWorkerPool`] of `n` workers on the server
    /// for the duration of the run (and leaves it installed afterwards).
    pub parallelism: usize,
}

impl PipelineConfig {
    /// A 240-query pipelined load at the given batch size with paper-default
    /// `k = b = 10`.  The queue holds several rounds so workers run ahead of
    /// the scheduler instead of handing off once per request.
    pub fn for_batch(batch_size: usize) -> Self {
        let batch_size = batch_size.max(1);
        PipelineConfig {
            workers: 4,
            queries_per_worker: 60,
            batch_size,
            queue_capacity: (4 * batch_size).max(64),
            k: 10,
            parallelism: 0,
        }
    }
}

/// The bounded submission queue shared by the pipeline's workers and its
/// scheduler thread.
struct Submissions {
    items: VecDeque<(QueryRequest, AuthToken)>,
    /// Workers still producing; the scheduler drains until this hits zero
    /// and the queue is empty.
    producers: usize,
    /// Set when the scheduler aborts on a serving error, so blocked workers
    /// stop submitting into a queue nobody drains.
    aborted: bool,
}

/// Decrements the producer count when a pipeline worker exits — including
/// by panic — so the scheduler can never wait forever on a producer that
/// died between submissions.
struct ProducerExit<'a> {
    queue: &'a Mutex<Submissions>,
    not_empty: &'a Condvar,
}

impl Drop for ProducerExit<'_> {
    fn drop(&mut self) {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.producers -= 1;
        if q.producers == 0 {
            // Wake the scheduler so it can observe the shutdown.
            self.not_empty.notify_all();
        }
    }
}

/// Drives raw ranged queries through the **pipelined** serving path: workers
/// enqueue initial requests (rotating through `users` and `lists` exactly
/// like [`drive_raw_queries`]) into a bounded submission queue; a scheduler
/// thread drains the queue in rounds of up to `batch_size` requests and
/// serves each round through [`IndexServer::handle_query_stream`], so locks,
/// authentication and shard routing amortize across the whole cross-user
/// request stream.  With `batch_size = 1` every request is its own round and
/// the measurement degenerates to the per-query serving path.
pub fn drive_pipelined_queries(
    server: &IndexServer,
    users: &[String],
    lists: &[u64],
    config: &PipelineConfig,
) -> Result<ThroughputReport, ProtocolError> {
    if users.is_empty() || lists.is_empty() {
        return Err(ProtocolError::InvalidRequest(
            "load generation needs at least one user and one list".into(),
        ));
    }
    let workers = config.workers.max(1);
    let batch_size = config.batch_size.max(1);
    let capacity = config.queue_capacity.max(1);
    server.set_shard_workers(config.parallelism);
    let queue = Mutex::new(Submissions {
        items: VecDeque::with_capacity(capacity),
        producers: workers,
        aborted: false,
    });
    let not_empty = Condvar::new();
    let not_full = Condvar::new();
    let elements_before = server.stats().elements_sent;
    let start = Instant::now();
    let served: (u64, f64) = std::thread::scope(|scope| {
        for w in 0..workers {
            let queue = &queue;
            let not_empty = &not_empty;
            let not_full = &not_full;
            scope.spawn(move || {
                let _exit = ProducerExit { queue, not_empty };
                let user = &users[w % users.len()];
                let token = server.acl().issue_token(user);
                for i in 0..config.queries_per_worker {
                    // Unit stride with a per-worker offset, matching the
                    // raw driver's workload shape.
                    let list = lists[(w.wrapping_mul(31) + i) % lists.len()];
                    let request = QueryRequest {
                        user: user.clone(),
                        list,
                        offset: 0,
                        cursor: 0,
                        count: config.k as u32,
                        k: config.k as u32,
                    };
                    let mut q = queue.lock().unwrap_or_else(|e| e.into_inner());
                    while q.items.len() >= capacity && !q.aborted {
                        q = not_full.wait(q).unwrap_or_else(|e| e.into_inner());
                    }
                    if q.aborted {
                        break;
                    }
                    q.items.push_back((request, token.clone()));
                    drop(q);
                    not_empty.notify_one();
                }
            });
        }
        let scheduler = scope.spawn(|| -> Result<(u64, f64), ProtocolError> {
            let mut served = 0u64;
            let mut waited = std::time::Duration::ZERO;
            // The scheduler swaps the whole queue into a local backlog in
            // one gulp (one lock + one wake-up per queue-full of requests,
            // whatever the batch size) and slices the backlog into rounds
            // of `batch_size` locally.
            let mut backlog: VecDeque<(QueryRequest, AuthToken)> = VecDeque::new();
            let mut round: Vec<(QueryRequest, AuthToken)> = Vec::with_capacity(batch_size);
            loop {
                if backlog.is_empty() {
                    {
                        let refill = Instant::now();
                        let mut q = queue.lock().unwrap_or_else(|e| e.into_inner());
                        // Also bail on `aborted`: if anything flags the run
                        // as dead while we sit here, producers stop
                        // submitting and this wait would never end.
                        while q.items.is_empty() && q.producers > 0 && !q.aborted {
                            q = not_empty.wait(q).unwrap_or_else(|e| e.into_inner());
                        }
                        waited += refill.elapsed();
                        if q.aborted || q.items.is_empty() {
                            return Ok((served, waited.as_secs_f64()));
                        }
                        std::mem::swap(&mut q.items, &mut backlog);
                    }
                    not_full.notify_all();
                }
                let take = backlog.len().min(batch_size);
                round.extend(backlog.drain(..take));
                let results = server.handle_query_stream(&round);
                for (result, (request, _)) in results.into_iter().zip(&round) {
                    match result {
                        Ok(response) => {
                            server.close_cursor(response.cursor, &request.user);
                            served += 1;
                        }
                        Err(e) => {
                            let mut q = queue.lock().unwrap_or_else(|e| e.into_inner());
                            q.aborted = true;
                            drop(q);
                            not_full.notify_all();
                            return Err(e);
                        }
                    }
                }
                round.clear();
            }
        });
        // analyze::allow(panic): join fails only if the scheduler already
        // panicked; re-panicking the load harness preserves that bug
        scheduler.join().expect("scheduler must not panic")
    })?;
    let (served, waited) = served;
    let elapsed = start.elapsed().as_secs_f64();
    let elements = server.stats().elements_sent - elements_before;
    Ok(report(workers, served, elapsed, waited, elements))
}

/// Drives complete client-side retrievals (decryption included) from a pool
/// of worker threads.  Worker `w` authenticates as `users[w % len]` with the
/// shared `keyring` and executes top-k queries over `terms` via the full
/// follow-up protocol.
pub fn drive_client_queries(
    server: &IndexServer,
    plan: &zerber_base::MergePlan,
    users: &[String],
    keyring: &HashMap<GroupId, GroupKeys>,
    terms: &[TermId],
    config: &LoadConfig,
) -> Result<ThroughputReport, ProtocolError> {
    if users.is_empty() || terms.is_empty() {
        return Err(ProtocolError::InvalidRequest(
            "load generation needs at least one user and one term".into(),
        ));
    }
    let elements_before = server.stats().elements_sent;
    let start = Instant::now();
    let queries: u64 = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..config.threads)
            .map(|w| {
                scope.spawn(move || -> Result<u64, ProtocolError> {
                    let user = &users[w % users.len()];
                    let token = server.acl().issue_token(user);
                    let client = Client::new(user.clone(), token, keyring.clone());
                    let retrieval = RetrievalConfig::for_k(config.k);
                    let mut served = 0u64;
                    for i in 0..config.queries_per_thread {
                        let term = terms[(w.wrapping_mul(31) + i) % terms.len()];
                        client.query(server, plan, term, &retrieval)?;
                        served += 1;
                    }
                    Ok(served)
                })
            })
            .collect();
        workers
            .into_iter()
            // analyze::allow(panic): join fails only if the worker already
            // panicked; re-panicking the load harness preserves that bug
            // instead of reporting a bogus throughput number
            .map(|w| w.join().expect("load worker must not panic"))
            .sum::<Result<u64, ProtocolError>>()
    })?;
    let elapsed = start.elapsed().as_secs_f64();
    let elements = server.stats().elements_sent - elements_before;
    Ok(report(config.threads, queries, elapsed, 0.0, elements))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_arithmetic_for_85_elements_reproduces_0_7_kb() {
        // Section 6.6: "about 85 posting elements are returned ... per query
        // term on average. Assuming that each posting element is encoded
        // using 64 bits, this is approximately 5.3 Kb (0.7 KB)".
        let breakdown = ResponseBreakdown::with_paper_elements(85, 0);
        assert_eq!(breakdown.posting_bytes, 85 * 8);
        assert!((breakdown.posting_bytes as f64 / 1024.0 - 0.66).abs() < 0.05);
    }

    #[test]
    fn top_10_with_snippets_is_about_3_5_kb_per_paper() {
        // 2.4 terms per query * ~0.7 KB postings + 2.5 KB snippets; the paper
        // rounds the sum to "about 3.5 KB" (the exact arithmetic gives ~4 KB).
        let per_term = ResponseBreakdown::with_paper_elements(85, 0).posting_bytes;
        let total = (2.4 * per_term as f64) + (10 * SNIPPET_BYTES) as f64;
        assert!(
            (total / 1024.0 - 3.5).abs() < 0.75,
            "total {} KB",
            total / 1024.0
        );
        // And it is far below the quoted competitor responses.
        assert!(total < GOOGLE_TOP10_BYTES as f64);
        assert!(total < ALTAVISTA_TOP10_BYTES as f64);
        assert!(total < YAHOO_TOP10_BYTES as f64);
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let t1 = NetworkModel::transfer_seconds(7_000, 56_000.0);
        let t2 = NetworkModel::transfer_seconds(14_000, 56_000.0);
        assert!((t1 - 1.0).abs() < 1e-9);
        assert!((t2 - 2.0 * t1).abs() < 1e-9);
        assert!(NetworkModel::transfer_seconds(100, 0.0).is_infinite());
    }

    #[test]
    fn query_latency_accounts_for_round_trips() {
        let net = NetworkModel::paper_intranet();
        let one = net.query_latency_seconds(1, 30, 700);
        let two = net.query_latency_seconds(2, 60, 700);
        assert!(two > one);
        assert!(
            (two - one - 0.3 - NetworkModel::transfer_seconds(30, net.client_up_bps)).abs() < 1e-9
        );
    }

    #[test]
    fn server_capacity_is_in_the_papers_ballpark() {
        // ~0.7 KB * 2.4 terms ≈ 1.7 KB per query over a 100 Mb/s LAN gives
        // roughly 700-800 queries per second, matching the paper's ~750.
        let net = NetworkModel::paper_intranet();
        let per_query_bytes = 2.4 * 85.0 * 8.0 + 10.0 * SNIPPET_BYTES as f64;
        let qps = net.server_queries_per_second(per_query_bytes);
        assert!(qps > 2_000.0, "raw LAN capacity {qps}");
        // The paper's 750 q/s figure also accounts for processing; our model
        // exposes the bandwidth-only bound, which must be above it.
        assert!(qps > 750.0);
        assert!(net.server_queries_per_second(0.0).is_infinite());
    }

    #[test]
    fn breakdown_totals_and_ratios() {
        let b = ResponseBreakdown::new(30, 58, 10);
        assert_eq!(b.total_bytes(), 30 * 58 + 2_500);
        assert!(b.ratio_to(GOOGLE_TOP10_BYTES) < 1.0);
        assert!(b.ratio_to(0).is_infinite());
    }

    #[test]
    fn default_model_is_the_paper_intranet() {
        assert_eq!(NetworkModel::default(), NetworkModel::paper_intranet());
    }
}
