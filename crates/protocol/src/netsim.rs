//! Network and presentation model for the bandwidth analysis of Section 6.6.
//!
//! The paper's intranet setup: "users connect over a mobile device with a
//! 56 Kb/s modem, while servers use 100 Mb/s LAN connections"; document
//! snippets are delivered as XML, "on average, each snippet contains about
//! 250 B including XML formatting"; Google/Altavista/Yahoo top-10 responses
//! are quoted at 15 KB / 37 KB / 59 KB for comparison.

use serde::{Deserialize, Serialize};

/// Average size of one result snippet including XML framing (bytes).
pub const SNIPPET_BYTES: usize = 250;
/// Google's top-10 response size quoted in the paper (bytes).
pub const GOOGLE_TOP10_BYTES: usize = 15 * 1024;
/// Altavista's top-10 response size quoted in the paper (bytes).
pub const ALTAVISTA_TOP10_BYTES: usize = 37 * 1024;
/// Yahoo's top-10 response size quoted in the paper (bytes).
pub const YAHOO_TOP10_BYTES: usize = 59 * 1024;
/// The 64-bit posting-element encoding assumed by the paper's arithmetic.
pub const PAPER_POSTING_BITS: usize = 64;

/// Link and latency parameters of the simulated deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Downstream bandwidth of the client link in bits per second.
    pub client_down_bps: f64,
    /// Upstream bandwidth of the client link in bits per second.
    pub client_up_bps: f64,
    /// Server LAN bandwidth in bits per second.
    pub server_bps: f64,
    /// Round-trip time between client and server in seconds.
    pub rtt_seconds: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::paper_intranet()
    }
}

impl NetworkModel {
    /// The setup of Section 6.6: 56 Kb/s modem client, 100 Mb/s LAN server,
    /// a GPRS-ish 300 ms round trip.
    pub fn paper_intranet() -> Self {
        NetworkModel {
            client_down_bps: 56_000.0,
            client_up_bps: 33_600.0,
            server_bps: 100_000_000.0,
            rtt_seconds: 0.3,
        }
    }

    /// Seconds needed to move `bytes` over a link of `bps` bits per second.
    pub fn transfer_seconds(bytes: usize, bps: f64) -> f64 {
        if bps <= 0.0 {
            return f64::INFINITY;
        }
        (bytes as f64) * 8.0 / bps
    }

    /// Client-perceived latency of a query exchange: one round trip per
    /// request plus upstream request bytes plus downstream response bytes.
    pub fn query_latency_seconds(
        &self,
        requests: usize,
        bytes_sent: usize,
        bytes_received: usize,
    ) -> f64 {
        self.rtt_seconds * requests as f64
            + Self::transfer_seconds(bytes_sent, self.client_up_bps)
            + Self::transfer_seconds(bytes_received, self.client_down_bps)
    }

    /// How many queries per second one server link can sustain given the
    /// average response size in bytes (the paper estimates ~750 queries/s for
    /// its ODP workload).
    pub fn server_queries_per_second(&self, avg_response_bytes: f64) -> f64 {
        if avg_response_bytes <= 0.0 {
            return f64::INFINITY;
        }
        self.server_bps / (avg_response_bytes * 8.0)
    }
}

/// Breakdown of a complete top-k answer delivered to the user, following the
/// accounting of Section 6.6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResponseBreakdown {
    /// Bytes of encrypted posting elements shipped for the query.
    pub posting_bytes: usize,
    /// Bytes of result snippets for the final top-k documents.
    pub snippet_bytes: usize,
}

impl ResponseBreakdown {
    /// Builds the breakdown from element count, per-element wire size and k.
    pub fn new(elements: usize, bytes_per_element: usize, k: usize) -> Self {
        ResponseBreakdown {
            posting_bytes: elements * bytes_per_element,
            snippet_bytes: k * SNIPPET_BYTES,
        }
    }

    /// Breakdown using the paper's 64-bit element encoding.
    pub fn with_paper_elements(elements: usize, k: usize) -> Self {
        Self::new(elements, PAPER_POSTING_BITS / 8, k)
    }

    /// Total response size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.posting_bytes + self.snippet_bytes
    }

    /// Ratio of this response to a competitor's quoted top-10 size.
    pub fn ratio_to(&self, competitor_bytes: usize) -> f64 {
        if competitor_bytes == 0 {
            return f64::INFINITY;
        }
        self.total_bytes() as f64 / competitor_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_arithmetic_for_85_elements_reproduces_0_7_kb() {
        // Section 6.6: "about 85 posting elements are returned ... per query
        // term on average. Assuming that each posting element is encoded
        // using 64 bits, this is approximately 5.3 Kb (0.7 KB)".
        let breakdown = ResponseBreakdown::with_paper_elements(85, 0);
        assert_eq!(breakdown.posting_bytes, 85 * 8);
        assert!((breakdown.posting_bytes as f64 / 1024.0 - 0.66).abs() < 0.05);
    }

    #[test]
    fn top_10_with_snippets_is_about_3_5_kb_per_paper() {
        // 2.4 terms per query * ~0.7 KB postings + 2.5 KB snippets; the paper
        // rounds the sum to "about 3.5 KB" (the exact arithmetic gives ~4 KB).
        let per_term = ResponseBreakdown::with_paper_elements(85, 0).posting_bytes;
        let total = (2.4 * per_term as f64) + (10 * SNIPPET_BYTES) as f64;
        assert!((total / 1024.0 - 3.5).abs() < 0.75, "total {} KB", total / 1024.0);
        // And it is far below the quoted competitor responses.
        assert!(total < GOOGLE_TOP10_BYTES as f64);
        assert!(total < ALTAVISTA_TOP10_BYTES as f64);
        assert!(total < YAHOO_TOP10_BYTES as f64);
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let t1 = NetworkModel::transfer_seconds(7_000, 56_000.0);
        let t2 = NetworkModel::transfer_seconds(14_000, 56_000.0);
        assert!((t1 - 1.0).abs() < 1e-9);
        assert!((t2 - 2.0 * t1).abs() < 1e-9);
        assert!(NetworkModel::transfer_seconds(100, 0.0).is_infinite());
    }

    #[test]
    fn query_latency_accounts_for_round_trips() {
        let net = NetworkModel::paper_intranet();
        let one = net.query_latency_seconds(1, 30, 700);
        let two = net.query_latency_seconds(2, 60, 700);
        assert!(two > one);
        assert!((two - one - 0.3 - NetworkModel::transfer_seconds(30, net.client_up_bps)).abs() < 1e-9);
    }

    #[test]
    fn server_capacity_is_in_the_papers_ballpark() {
        // ~0.7 KB * 2.4 terms ≈ 1.7 KB per query over a 100 Mb/s LAN gives
        // roughly 700-800 queries per second, matching the paper's ~750.
        let net = NetworkModel::paper_intranet();
        let per_query_bytes = 2.4 * 85.0 * 8.0 + 10.0 * SNIPPET_BYTES as f64;
        let qps = net.server_queries_per_second(per_query_bytes);
        assert!(qps > 2_000.0, "raw LAN capacity {qps}");
        // The paper's 750 q/s figure also accounts for processing; our model
        // exposes the bandwidth-only bound, which must be above it.
        assert!(qps > 750.0);
        assert!(net.server_queries_per_second(0.0).is_infinite());
    }

    #[test]
    fn breakdown_totals_and_ratios() {
        let b = ResponseBreakdown::new(30, 58, 10);
        assert_eq!(b.total_bytes(), 30 * 58 + 2_500);
        assert!(b.ratio_to(GOOGLE_TOP10_BYTES) < 1.0);
        assert!(b.ratio_to(0).is_infinite());
    }

    #[test]
    fn default_model_is_the_paper_intranet() {
        assert_eq!(NetworkModel::default(), NetworkModel::paper_intranet());
    }
}
