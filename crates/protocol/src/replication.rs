//! Wire messages of the primary→replica replication stream.
//!
//! The store layer's `ReplicaTransport` is an in-process seam today; this
//! module pins the byte layout a socket ingress ships the same exchanges
//! with, so the transport can move onto the network without touching the
//! replication logic.  Every message is length-framed, tagged and
//! CRC-guarded — a torn or bit-flipped message comes back as a typed codec
//! error, which the replica's reconnect loop treats like any other
//! transport failure.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! message  := [body_len u32][crc32 u32][tag u8][body]
//! request  := tag 0x01 (snapshot, empty body)
//!           | tag 0x02 (poll): [num_shards u32][from u64]*[max_frames u32]
//! response := tag 0x81 (snapshot): [num_files u32] file* [num_heads u32][head u64]*
//!           | tag 0x82 (frames):   [num_frames u32] frame* [num_heads u32][head u64]*
//!                                  [need_snapshot u8]
//! file     := [name_len u16][name][crc32 u32][len u32][bytes]
//! frame    := [shard u32][len u32][bytes]          (bytes = raw WAL frame)
//! ```
//!
//! The message CRC covers `[tag][body]`.  Snapshot files additionally carry
//! their own CRC end-to-end (the replica re-checks them before writing its
//! root), and WAL frame bytes carry the store's frame CRC — corruption is
//! caught at whichever layer it slips past.

use zerber_store::crc32;
use zerber_store::replication::{FrameBatch, SnapshotFile, SnapshotPayload, WireFrame};

use crate::error::ProtocolError;

const TAG_SNAPSHOT_REQUEST: u8 = 0x01;
const TAG_POLL_REQUEST: u8 = 0x02;
const TAG_SNAPSHOT_RESPONSE: u8 = 0x81;
const TAG_FRAMES_RESPONSE: u8 = 0x82;

/// A replica→primary request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicationRequest {
    /// Fetch a full snapshot.
    Snapshot,
    /// Poll the live WAL tail past `from` (one position per shard).
    Poll { from: Vec<u64>, max_frames: u32 },
}

/// A primary→replica response.
#[derive(Debug, Clone)]
pub enum ReplicationResponse {
    /// The snapshot file set plus the primary's per-shard heads.
    Snapshot(SnapshotPayload),
    /// A batch of live WAL frames.
    Frames(FrameBatch),
}

fn frame_message(tag: u8, body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1 + body.len());
    payload.push(tag);
    payload.extend_from_slice(body);
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Splits a framed message into its tag and body after validating length
/// and CRC.
/// Reads a little-endian `u32` at `pos`, or reports a truncated message.
fn le_u32(buf: &[u8], pos: usize) -> Result<u32, ProtocolError> {
    pos.checked_add(4)
        .and_then(|end| buf.get(pos..end))
        .and_then(|s| <[u8; 4]>::try_from(s).ok())
        .map(u32::from_le_bytes)
        .ok_or_else(|| ProtocolError::Codec("truncated replication message".into()))
}

fn open_message(buf: &[u8]) -> Result<(u8, &[u8]), ProtocolError> {
    if buf.len() < 9 {
        return Err(ProtocolError::Codec("truncated replication message".into()));
    }
    let body_len = le_u32(buf, 0)? as usize;
    let carried = le_u32(buf, 4)?;
    let payload = &buf[8..];
    if payload.len() != body_len + 1 {
        return Err(ProtocolError::Codec(
            "replication message length mismatch".into(),
        ));
    }
    if crc32(payload) != carried {
        return Err(ProtocolError::Codec(
            "replication message failed its CRC".into(),
        ));
    }
    Ok((payload[0], &payload[1..]))
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| ProtocolError::Codec("truncated replication body".into()))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        let bytes = <[u8; 2]>::try_from(self.take(2)?)
            .map_err(|_| ProtocolError::Codec("truncated replication body".into()))?;
        Ok(u16::from_le_bytes(bytes))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let bytes = <[u8; 4]>::try_from(self.take(4)?)
            .map_err(|_| ProtocolError::Codec("truncated replication body".into()))?;
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let bytes = <[u8; 8]>::try_from(self.take(8)?)
            .map_err(|_| ProtocolError::Codec("truncated replication body".into()))?;
        Ok(u64::from_le_bytes(bytes))
    }

    /// A count field off the wire: bounded by what the remaining bytes
    /// could plausibly hold (each counted item takes at least `min_item`
    /// bytes), so a corrupt count cannot drive a huge pre-allocation.
    fn count(&mut self, min_item: usize) -> Result<(usize, usize), ProtocolError> {
        let claimed = self.u32()? as usize;
        let plausible = (self.buf.len() - self.pos) / min_item.max(1) + 1;
        Ok((claimed, claimed.min(plausible)))
    }

    fn finish(&self) -> Result<(), ProtocolError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtocolError::Codec(
                "trailing bytes in replication body".into(),
            ))
        }
    }
}

impl ReplicationRequest {
    /// Serializes the request to its framed wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ReplicationRequest::Snapshot => frame_message(TAG_SNAPSHOT_REQUEST, &[]),
            ReplicationRequest::Poll { from, max_frames } => {
                let mut body = Vec::with_capacity(8 + from.len() * 8);
                body.extend_from_slice(&(from.len() as u32).to_le_bytes());
                for &seq in from {
                    body.extend_from_slice(&seq.to_le_bytes());
                }
                body.extend_from_slice(&max_frames.to_le_bytes());
                frame_message(TAG_POLL_REQUEST, &body)
            }
        }
    }

    /// Decodes a buffer produced by [`ReplicationRequest::encode`].
    pub fn decode(buf: &[u8]) -> Result<Self, ProtocolError> {
        let (tag, body) = open_message(buf)?;
        match tag {
            TAG_SNAPSHOT_REQUEST => {
                if body.is_empty() {
                    Ok(ReplicationRequest::Snapshot)
                } else {
                    Err(ProtocolError::Codec(
                        "snapshot request carries a body".into(),
                    ))
                }
            }
            TAG_POLL_REQUEST => {
                let mut r = Reader::new(body);
                let (claimed, plausible) = r.count(8)?;
                let mut from = Vec::with_capacity(plausible);
                for _ in 0..claimed {
                    from.push(r.u64()?);
                }
                let max_frames = r.u32()?;
                r.finish()?;
                Ok(ReplicationRequest::Poll { from, max_frames })
            }
            other => Err(ProtocolError::Codec(format!(
                "unknown replication request tag {other:#04x}"
            ))),
        }
    }
}

impl ReplicationResponse {
    /// Serializes the response to its framed wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ReplicationResponse::Snapshot(payload) => {
                let mut body = Vec::new();
                body.extend_from_slice(&(payload.files.len() as u32).to_le_bytes());
                for file in &payload.files {
                    body.extend_from_slice(&(file.name.len() as u16).to_le_bytes());
                    body.extend_from_slice(file.name.as_bytes());
                    body.extend_from_slice(&file.crc.to_le_bytes());
                    body.extend_from_slice(&(file.bytes.len() as u32).to_le_bytes());
                    body.extend_from_slice(&file.bytes);
                }
                encode_heads(&mut body, &payload.heads);
                frame_message(TAG_SNAPSHOT_RESPONSE, &body)
            }
            ReplicationResponse::Frames(batch) => {
                let mut body = Vec::new();
                body.extend_from_slice(&(batch.frames.len() as u32).to_le_bytes());
                for frame in &batch.frames {
                    body.extend_from_slice(&frame.shard.to_le_bytes());
                    body.extend_from_slice(&(frame.bytes.len() as u32).to_le_bytes());
                    body.extend_from_slice(&frame.bytes);
                }
                encode_heads(&mut body, &batch.heads);
                body.push(batch.need_snapshot as u8);
                frame_message(TAG_FRAMES_RESPONSE, &body)
            }
        }
    }

    /// Decodes a buffer produced by [`ReplicationResponse::encode`].
    pub fn decode(buf: &[u8]) -> Result<Self, ProtocolError> {
        let (tag, body) = open_message(buf)?;
        match tag {
            TAG_SNAPSHOT_RESPONSE => {
                let mut r = Reader::new(body);
                let (claimed, plausible) = r.count(11)?;
                let mut files = Vec::with_capacity(plausible);
                for _ in 0..claimed {
                    let name_len = r.u16()? as usize;
                    let name = String::from_utf8(r.take(name_len)?.to_vec()).map_err(|_| {
                        ProtocolError::Codec("snapshot file name is not UTF-8".into())
                    })?;
                    let crc = r.u32()?;
                    let len = r.u32()? as usize;
                    let bytes = r.take(len)?.to_vec();
                    files.push(SnapshotFile { name, crc, bytes });
                }
                let heads = decode_heads(&mut r)?;
                r.finish()?;
                Ok(ReplicationResponse::Snapshot(SnapshotPayload {
                    files,
                    heads,
                }))
            }
            TAG_FRAMES_RESPONSE => {
                let mut r = Reader::new(body);
                let (claimed, plausible) = r.count(8)?;
                let mut frames = Vec::with_capacity(plausible);
                for _ in 0..claimed {
                    let shard = r.u32()?;
                    let len = r.u32()? as usize;
                    let bytes = r.take(len)?.to_vec();
                    frames.push(WireFrame { shard, bytes });
                }
                let heads = decode_heads(&mut r)?;
                let need_snapshot = match r.u8()? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(ProtocolError::Codec(format!(
                            "invalid need_snapshot flag {other}"
                        )))
                    }
                };
                r.finish()?;
                Ok(ReplicationResponse::Frames(FrameBatch {
                    frames,
                    heads,
                    need_snapshot,
                }))
            }
            other => Err(ProtocolError::Codec(format!(
                "unknown replication response tag {other:#04x}"
            ))),
        }
    }
}

fn encode_heads(body: &mut Vec<u8>, heads: &[u64]) {
    body.extend_from_slice(&(heads.len() as u32).to_le_bytes());
    for &head in heads {
        body.extend_from_slice(&head.to_le_bytes());
    }
}

fn decode_heads(r: &mut Reader<'_>) -> Result<Vec<u64>, ProtocolError> {
    let (claimed, plausible) = r.count(8)?;
    let mut heads = Vec::with_capacity(plausible);
    for _ in 0..claimed {
        heads.push(r.u64()?);
    }
    Ok(heads)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> SnapshotPayload {
        let meta = b"meta-bytes".to_vec();
        let pages = vec![0xC3u8; 64];
        SnapshotPayload {
            files: vec![
                SnapshotFile {
                    name: "store.meta".into(),
                    crc: crc32(&meta),
                    bytes: meta,
                },
                SnapshotFile {
                    name: "shard-000.g2.pages".into(),
                    crc: crc32(&pages),
                    bytes: pages,
                },
                SnapshotFile {
                    name: "shard-000.wal".into(),
                    crc: crc32(&[]),
                    bytes: Vec::new(),
                },
            ],
            heads: vec![17, 0],
        }
    }

    fn sample_batch(need_snapshot: bool) -> FrameBatch {
        FrameBatch {
            frames: vec![
                WireFrame {
                    shard: 0,
                    bytes: vec![1, 2, 3, 4, 5],
                },
                WireFrame {
                    shard: 3,
                    bytes: vec![9; 40],
                },
            ],
            heads: vec![5, 0, 0, 12],
            need_snapshot,
        }
    }

    #[test]
    fn requests_roundtrip() {
        for request in [
            ReplicationRequest::Snapshot,
            ReplicationRequest::Poll {
                from: vec![0, 7, 123456789],
                max_frames: 256,
            },
            ReplicationRequest::Poll {
                from: Vec::new(),
                max_frames: 1,
            },
        ] {
            let buf = request.encode();
            assert_eq!(ReplicationRequest::decode(&buf).unwrap(), request);
        }
    }

    #[test]
    fn snapshot_response_roundtrips() {
        let payload = sample_snapshot();
        let buf = ReplicationResponse::Snapshot(payload.clone()).encode();
        match ReplicationResponse::decode(&buf).unwrap() {
            ReplicationResponse::Snapshot(back) => {
                assert_eq!(back.heads, payload.heads);
                assert_eq!(back.files.len(), payload.files.len());
                for (a, b) in back.files.iter().zip(&payload.files) {
                    assert_eq!(a.name, b.name);
                    assert_eq!(a.crc, b.crc);
                    assert_eq!(a.bytes, b.bytes);
                }
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn frame_batch_roundtrips_with_both_flag_values() {
        for need_snapshot in [false, true] {
            let batch = sample_batch(need_snapshot);
            let buf = ReplicationResponse::Frames(batch.clone()).encode();
            match ReplicationResponse::decode(&buf).unwrap() {
                ReplicationResponse::Frames(back) => {
                    assert_eq!(back.heads, batch.heads);
                    assert_eq!(back.need_snapshot, need_snapshot);
                    assert_eq!(back.frames.len(), batch.frames.len());
                    for (a, b) in back.frames.iter().zip(&batch.frames) {
                        assert_eq!(a.shard, b.shard);
                        assert_eq!(a.bytes, b.bytes);
                    }
                }
                other => panic!("wrong variant: {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_byte_flip_is_rejected_or_roundtrips_clean() {
        // The message CRC makes any single-byte corruption detectable: no
        // flipped buffer may decode successfully.
        let buf = ReplicationResponse::Frames(sample_batch(false)).encode();
        for at in 0..buf.len() {
            let mut bad = buf.clone();
            bad[at] ^= 0x5A;
            assert!(
                ReplicationResponse::decode(&bad).is_err(),
                "flip at byte {at} went undetected"
            );
        }
        let buf = ReplicationRequest::Poll {
            from: vec![3, 9],
            max_frames: 64,
        }
        .encode();
        for at in 0..buf.len() {
            let mut bad = buf.clone();
            bad[at] ^= 0x5A;
            assert!(
                ReplicationRequest::decode(&bad).is_err(),
                "flip at byte {at} went undetected"
            );
        }
    }

    #[test]
    fn truncated_and_padded_messages_are_rejected() {
        let buf = ReplicationResponse::Snapshot(sample_snapshot()).encode();
        for cut in [0, 3, 8, buf.len() / 2, buf.len() - 1] {
            assert!(ReplicationResponse::decode(&buf[..cut]).is_err());
        }
        let mut padded = buf;
        padded.push(0);
        assert!(ReplicationResponse::decode(&padded).is_err());
    }

    #[test]
    fn huge_claimed_counts_error_without_allocating() {
        // A poll request claiming u32::MAX positions over a tiny body must
        // come back as a codec error, not an allocation abort.  Build the
        // frame by hand so the CRC is valid and only the count lies.
        let mut body = Vec::new();
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        body.extend_from_slice(&0u32.to_le_bytes());
        let buf = super::frame_message(super::TAG_POLL_REQUEST, &body);
        assert!(ReplicationRequest::decode(&buf).is_err());
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let buf = super::frame_message(0x7f, &[]);
        assert!(ReplicationRequest::decode(&buf).is_err());
        assert!(ReplicationResponse::decode(&buf).is_err());
    }
}
