//! Document corpus substrate for the Zerber+R reproduction.
//!
//! The crate provides everything the paper's evaluation needs *below* the
//! index layer:
//!
//! * a document model with access-control groups ([`doc::Document`],
//!   [`doc::GroupId`]),
//! * a deterministic [`tokenize::Tokenizer`] with stopword handling,
//! * a string-interning [`dictionary::TermDictionary`],
//! * an in-memory [`corpus::Corpus`] with per-document term counts,
//! * corpus-wide statistics ([`stats::CorpusStats`]): term frequencies,
//!   normalized term frequencies, document frequencies and the term
//!   probabilities `p_t` used by the r-confidentiality condition (Definition 2
//!   of the paper),
//! * synthetic dataset generators ([`synth`]) calibrated to the two
//!   collections used in the paper's evaluation (Stud IP and the Open
//!   Directory Project crawl), and
//! * training / control / evaluation splits ([`split`]) used to fit the RSTF.
//!
//! Everything is deterministic given a seed; no global RNG state is used.

pub mod corpus;
pub mod dictionary;
pub mod doc;
pub mod error;
pub mod split;
pub mod stats;
pub mod synth;
pub mod tokenize;

pub use corpus::{Corpus, CorpusBuilder, DocumentEntry};
pub use dictionary::{TermDictionary, TermId};
pub use doc::{DocId, Document, GroupId};
pub use error::CorpusError;
pub use split::{sample_split, SplitConfig, TrainControlSplit};
pub use stats::{CorpusStats, TermStats};
pub use synth::{CorpusGenerator, CustomProfile, DatasetProfile, SynthConfig};
pub use tokenize::{TokenizeConfig, Tokenizer};
