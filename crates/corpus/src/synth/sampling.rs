//! Small numeric samplers used by the synthetic corpus generators.
//!
//! Only `rand`'s uniform primitives are used; the normal and log-normal
//! transformations are implemented here (Box–Muller) to avoid an extra
//! dependency on `rand_distr`.

use rand::Rng;

/// Draws one standard-normal variate using the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 which would make ln(u1) = -inf.
    let u1: f64 = loop {
        let v: f64 = rng.gen();
        if v > f64::MIN_POSITIVE {
            break v;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a normal variate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Draws a log-normal variate parameterized by the *median* of the resulting
/// distribution and the log-space standard deviation `sigma`.
///
/// Document lengths in real collections are heavily right-skewed; a log-normal
/// model reproduces the mix of short e-mails and long project documentation
/// described in the paper's scenario (Section 2).
pub fn log_normal_by_median<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    assert!(median > 0.0, "median must be positive");
    assert!(sigma >= 0.0, "sigma must be non-negative");
    (median.ln() + sigma * standard_normal(rng)).exp()
}

/// Draws a document length from a clamped log-normal distribution.
pub fn doc_length<R: Rng + ?Sized>(
    rng: &mut R,
    median: f64,
    sigma: f64,
    min_len: u32,
    max_len: u32,
) -> u32 {
    let raw = log_normal_by_median(rng, median, sigma);
    let len = raw.round();
    let len = if len.is_finite() {
        len
    } else {
        f64::from(max_len)
    };
    (len as i64).clamp(i64::from(min_len), i64::from(max_len)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_has_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn normal_is_shifted_and_scaled() {
        let mut rng = StdRng::seed_from_u64(12);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn log_normal_median_is_respected() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 50_001;
        let mut samples: Vec<f64> = (0..n)
            .map(|_| log_normal_by_median(&mut rng, 150.0, 1.0))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!(
            (median - 150.0).abs() / 150.0 < 0.05,
            "empirical median {median}"
        );
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn doc_length_respects_clamping() {
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..10_000 {
            let len = doc_length(&mut rng, 100.0, 2.0, 20, 400);
            assert!((20..=400).contains(&len));
        }
    }

    #[test]
    fn zero_sigma_log_normal_is_degenerate_at_the_median() {
        let mut rng = StdRng::seed_from_u64(15);
        for _ in 0..100 {
            let v = log_normal_by_median(&mut rng, 42.0, 0.0);
            assert!((v - 42.0).abs() < 1e-9);
        }
    }
}
