//! Zipf-distributed sampling over term ranks.
//!
//! Term frequency in natural-language collections follows a power law
//! (Section 3.4, Figure 4 of the paper).  The synthetic generators therefore
//! draw term ranks from a Zipf distribution: rank `i` (1-based) is chosen with
//! probability proportional to `1 / i^s`.
//!
//! The sampler precomputes the cumulative distribution once and samples by
//! binary search, so a single draw is `O(log N)` with no rejection loop.

use rand::Rng;

/// Zipf sampler over `{0, 1, ..., n-1}` with exponent `s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    exponent: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with exponent `s` (`s >= 0`).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative or not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler requires at least one rank");
        assert!(
            s.is_finite() && s >= 0.0,
            "Zipf exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating point drift: the last entry must be exactly 1.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        ZipfSampler { cdf, exponent: s }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the sampler has no ranks (never happens after `new`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability mass of rank `i` (0-based).
    pub fn pmf(&self, i: usize) -> f64 {
        if i >= self.cdf.len() {
            return 0.0;
        }
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Draws one rank (0-based: 0 is the most probable rank).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen::<f64>();
        // partition_point returns the first index whose cdf value is >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = ZipfSampler::new(100, 1.1);
        let total: f64 = (0..100).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lower_ranks_are_more_probable() {
        let z = ZipfSampler::new(1000, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(10));
        assert!(z.pmf(10) > z.pmf(500));
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for i in 0..10 {
            assert!((z.pmf(i) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn empirical_frequencies_follow_the_pmf() {
        let z = ZipfSampler::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let mut counts = [0u32; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for i in [0usize, 1, 5, 20] {
            let emp = f64::from(counts[i]) / n as f64;
            let expected = z.pmf(i);
            assert!(
                (emp - expected).abs() < 0.01,
                "rank {i}: empirical {emp}, expected {expected}"
            );
        }
    }

    #[test]
    fn samples_are_always_in_range() {
        let z = ZipfSampler::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic]
    fn zero_ranks_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    fn ratio_of_head_ranks_matches_power_law() {
        let z = ZipfSampler::new(10_000, 1.0);
        // p(0)/p(1) should be 2 for s=1.
        assert!((z.pmf(0) / z.pmf(1) - 2.0).abs() < 1e-9);
        let z2 = ZipfSampler::new(10_000, 2.0);
        assert!((z2.pmf(0) / z2.pmf(1) - 4.0).abs() < 1e-9);
    }
}
