//! Synthetic corpus generators calibrated to the paper's evaluation datasets.
//!
//! The paper evaluates on two proprietary collections (Section 6.1):
//!
//! * **Stud IP** learning-management-system snapshot: 8,500 access-controlled
//!   documents, ~570,000 terms, thousands of course groups;
//! * **Open Directory Project (ODP)** crawl from 2005: 237,000 documents,
//!   987,700 distinct terms, 100 topics, each topic forming one
//!   collaboration group.
//!
//! Neither collection is redistributable, so this module builds synthetic
//! stand-ins that reproduce the *statistical* properties the experiments
//! depend on: Zipfian term popularity (Figure 4), heavy-tailed document
//! lengths, term-specific normalized-TF distributions (Figure 5), and a
//! group/topic structure for access control.  See DESIGN.md §3 for the full
//! substitution argument.

pub mod sampling;
pub mod zipf;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::corpus::{Corpus, CorpusBuilder};
use crate::doc::GroupId;
use crate::error::CorpusError;

pub use zipf::ZipfSampler;

/// Fully specified generator parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CustomProfile {
    /// Number of documents to generate.
    pub num_docs: usize,
    /// Number of collaboration groups (courses / topics).
    pub num_groups: usize,
    /// Total vocabulary size (general + topic-specific terms).
    pub vocab_size: usize,
    /// Fraction of the vocabulary shared by all groups.
    pub general_vocab_fraction: f64,
    /// Probability that a token is drawn from the group's topic vocabulary
    /// rather than the general vocabulary.
    pub topic_mix: f64,
    /// Zipf exponent of term popularity.
    pub zipf_exponent: f64,
    /// Median document length in tokens.
    pub doc_length_median: f64,
    /// Log-space standard deviation of the document length distribution.
    pub doc_length_sigma: f64,
    /// Minimum document length after clamping.
    pub min_doc_length: u32,
    /// Maximum document length after clamping.
    pub max_doc_length: u32,
}

/// The two datasets of the paper plus an escape hatch for custom settings.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetProfile {
    /// Stud IP learning-management-system collection (Section 6.1.1).
    StudIp,
    /// Open Directory Project web crawl (Section 6.1.2).
    OdpWeb,
    /// Caller-provided parameters.
    Custom(CustomProfile),
}

impl DatasetProfile {
    /// Resolves the named profile to concrete parameters at scale 1.0.
    pub fn base_profile(&self) -> CustomProfile {
        match self {
            DatasetProfile::StudIp => CustomProfile {
                num_docs: 8_500,
                num_groups: 330,
                vocab_size: 70_000,
                general_vocab_fraction: 0.25,
                topic_mix: 0.35,
                zipf_exponent: 1.05,
                doc_length_median: 180.0,
                doc_length_sigma: 1.1,
                min_doc_length: 10,
                max_doc_length: 20_000,
            },
            DatasetProfile::OdpWeb => CustomProfile {
                num_docs: 237_000,
                num_groups: 100,
                vocab_size: 250_000,
                general_vocab_fraction: 0.20,
                topic_mix: 0.45,
                zipf_exponent: 1.10,
                doc_length_median: 250.0,
                doc_length_sigma: 0.9,
                min_doc_length: 15,
                max_doc_length: 30_000,
            },
            DatasetProfile::Custom(p) => p.clone(),
        }
    }

    /// Human-readable name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetProfile::StudIp => "StudIP",
            DatasetProfile::OdpWeb => "ODP-Web",
            DatasetProfile::Custom(_) => "Custom",
        }
    }
}

/// Configuration of the [`CorpusGenerator`].
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Which dataset to imitate.
    pub profile: DatasetProfile,
    /// Linear scale factor applied to document count, group count and
    /// vocabulary size (1.0 = paper scale).  Benchmarks use smaller scales to
    /// keep laptop runtimes reasonable; EXPERIMENTS.md records the scale used
    /// for every reported number.
    pub scale: f64,
    /// RNG seed; generation is fully deterministic given the configuration.
    pub seed: u64,
}

impl SynthConfig {
    /// Convenience constructor with scale 1.0.
    pub fn new(profile: DatasetProfile, seed: u64) -> Self {
        SynthConfig {
            profile,
            scale: 1.0,
            seed,
        }
    }

    /// Sets the scale factor.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    fn resolved(&self) -> Result<CustomProfile, CorpusError> {
        if !(self.scale.is_finite() && self.scale > 0.0) {
            return Err(CorpusError::InvalidConfig(format!(
                "scale must be positive and finite, got {}",
                self.scale
            )));
        }
        let base = self.profile.base_profile();
        if base.num_docs == 0 || base.vocab_size == 0 || base.num_groups == 0 {
            return Err(CorpusError::InvalidConfig(
                "profile must have at least one document, group and term".into(),
            ));
        }
        if !(0.0..=1.0).contains(&base.general_vocab_fraction)
            || !(0.0..=1.0).contains(&base.topic_mix)
        {
            return Err(CorpusError::InvalidConfig(
                "general_vocab_fraction and topic_mix must be in [0,1]".into(),
            ));
        }
        if base.min_doc_length == 0 || base.min_doc_length > base.max_doc_length {
            return Err(CorpusError::InvalidConfig(
                "document length bounds must satisfy 0 < min <= max".into(),
            ));
        }
        let scale = self.scale;
        Ok(CustomProfile {
            num_docs: ((base.num_docs as f64 * scale).round() as usize).max(4),
            num_groups: ((base.num_groups as f64 * scale).round() as usize)
                .clamp(1, base.num_groups.max(1)),
            vocab_size: ((base.vocab_size as f64 * scale).round() as usize).max(50),
            ..base
        })
    }
}

/// Deterministic synthetic corpus generator.
#[derive(Debug, Clone)]
pub struct CorpusGenerator {
    config: SynthConfig,
}

impl CorpusGenerator {
    /// Creates a generator.
    pub fn new(config: SynthConfig) -> Self {
        CorpusGenerator { config }
    }

    /// The configuration the generator was created with.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// Generates the corpus.
    ///
    /// Vocabulary layout: term ranks `0..general` form the general vocabulary
    /// shared by every group; the remaining ranks are partitioned evenly among
    /// groups as topic vocabularies.  Every token of a document is drawn from
    /// the topic vocabulary with probability `topic_mix` and from the general
    /// vocabulary otherwise; within each vocabulary, ranks follow a Zipf law.
    pub fn generate(&self) -> Result<Corpus, CorpusError> {
        let p = self.config.resolved()?;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let general_size = ((p.vocab_size as f64) * p.general_vocab_fraction).round() as usize;
        let general_size = general_size.clamp(1, p.vocab_size);
        let topic_pool = p.vocab_size - general_size;
        let per_topic = topic_pool.checked_div(p.num_groups).unwrap_or(0);

        let general_zipf = ZipfSampler::new(general_size, p.zipf_exponent);
        let topic_zipf = if per_topic > 0 {
            Some(ZipfSampler::new(per_topic, p.zipf_exponent))
        } else {
            None
        };

        let mut builder = CorpusBuilder::new();
        let mut counts: std::collections::HashMap<usize, u32> = std::collections::HashMap::new();
        let mut name_buf = String::new();
        for doc_idx in 0..p.num_docs {
            let group = GroupId(rng.gen_range(0..p.num_groups as u32));
            let len = sampling::doc_length(
                &mut rng,
                p.doc_length_median,
                p.doc_length_sigma,
                p.min_doc_length,
                p.max_doc_length,
            );
            counts.clear();
            for _ in 0..len {
                let use_topic = topic_zipf.is_some() && rng.gen::<f64>() < p.topic_mix;
                let term_index = if use_topic {
                    let z = topic_zipf.as_ref().expect("checked above");
                    general_size + group.index() * per_topic + z.sample(&mut rng)
                } else {
                    general_zipf.sample(&mut rng)
                };
                *counts.entry(term_index).or_insert(0) += 1;
            }
            // Sort by term index: HashMap iteration order would otherwise
            // leak into TermId assignment and break seed-reproducibility.
            let mut items: Vec<(usize, u32)> = counts.iter().map(|(&i, &c)| (i, c)).collect();
            items.sort_unstable_by_key(|&(i, _)| i);
            let pairs: Vec<(String, u32)> = items
                .into_iter()
                .map(|(idx, c)| (format!("w{idx}"), c))
                .collect();
            name_buf.clear();
            name_buf.push_str("doc-");
            name_buf.push_str(&doc_idx.to_string());
            builder.add_counted_document(name_buf.clone(), group, &pairs)?;
        }
        Ok(builder.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CorpusStats;

    fn tiny_config(seed: u64) -> SynthConfig {
        SynthConfig {
            profile: DatasetProfile::Custom(CustomProfile {
                num_docs: 200,
                num_groups: 5,
                vocab_size: 2_000,
                general_vocab_fraction: 0.3,
                topic_mix: 0.4,
                zipf_exponent: 1.0,
                doc_length_median: 80.0,
                doc_length_sigma: 0.8,
                min_doc_length: 10,
                max_doc_length: 800,
            }),
            scale: 1.0,
            seed,
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = CorpusGenerator::new(tiny_config(42)).generate().unwrap();
        let b = CorpusGenerator::new(tiny_config(42)).generate().unwrap();
        assert_eq!(a.num_docs(), b.num_docs());
        assert_eq!(a.num_terms(), b.num_terms());
        assert_eq!(a.total_tokens(), b.total_tokens());
        // Term-id assignment must also be reproducible, not just aggregate
        // counts: identical seeds give identical per-document term vectors.
        for ((id_a, doc_a), (id_b, doc_b)) in a.docs().zip(b.docs()) {
            assert_eq!(id_a, id_b);
            assert_eq!(doc_a.term_counts, doc_b.term_counts);
        }
        assert_eq!(
            CorpusStats::compute(&a).terms_by_doc_freq(),
            CorpusStats::compute(&b).terms_by_doc_freq()
        );
        let c = CorpusGenerator::new(tiny_config(43)).generate().unwrap();
        assert_ne!(a.total_tokens(), c.total_tokens());
    }

    #[test]
    fn requested_document_count_is_produced() {
        let corpus = CorpusGenerator::new(tiny_config(1)).generate().unwrap();
        assert_eq!(corpus.num_docs(), 200);
        assert!(corpus.num_groups() <= 5);
        assert!(corpus.num_terms() > 100);
    }

    #[test]
    fn document_lengths_respect_the_clamp() {
        let corpus = CorpusGenerator::new(tiny_config(2)).generate().unwrap();
        for (_, d) in corpus.docs() {
            assert!(d.length >= 10 && d.length <= 800, "length {}", d.length);
        }
    }

    #[test]
    fn term_popularity_is_heavy_tailed() {
        let corpus = CorpusGenerator::new(tiny_config(3)).generate().unwrap();
        let stats = CorpusStats::compute(&corpus);
        let order = stats.terms_by_doc_freq();
        let top = stats.term(order[0]).unwrap().doc_freq;
        let median = stats.term(order[order.len() / 2]).unwrap().doc_freq;
        assert!(
            top >= 10 * median.max(1),
            "expected a heavy-tailed document frequency distribution (top {top}, median {median})"
        );
    }

    #[test]
    fn scale_reduces_the_corpus_proportionally() {
        let full = CorpusGenerator::new(tiny_config(4)).generate().unwrap();
        let half = CorpusGenerator::new(tiny_config(4).with_scale(0.5))
            .generate()
            .unwrap();
        assert_eq!(half.num_docs(), 100);
        assert!(half.num_docs() < full.num_docs());
    }

    #[test]
    fn named_profiles_resolve_to_paper_scale_parameters() {
        let studip = DatasetProfile::StudIp.base_profile();
        assert_eq!(studip.num_docs, 8_500);
        let odp = DatasetProfile::OdpWeb.base_profile();
        assert_eq!(odp.num_docs, 237_000);
        assert_eq!(odp.num_groups, 100);
        assert_eq!(DatasetProfile::StudIp.name(), "StudIP");
        assert_eq!(DatasetProfile::OdpWeb.name(), "ODP-Web");
    }

    #[test]
    fn invalid_scale_is_rejected() {
        let cfg = tiny_config(5).with_scale(0.0);
        assert!(CorpusGenerator::new(cfg).generate().is_err());
        let cfg = tiny_config(5).with_scale(f64::NAN);
        assert!(CorpusGenerator::new(cfg).generate().is_err());
    }

    #[test]
    fn topic_terms_concentrate_inside_their_group() {
        let corpus = CorpusGenerator::new(tiny_config(6)).generate().unwrap();
        let stats = CorpusStats::compute(&corpus);
        // Pick a topic-specific term (vocabulary index beyond the general
        // range) and check all documents containing it are in one group.
        let dict = corpus.dictionary();
        let mut checked = 0;
        for (id, name) in dict.iter() {
            let idx: usize = name[1..].parse().unwrap();
            if idx >= 600 {
                // general vocab is 0.3 * 2000 = 600
                let t = stats.term(id).unwrap();
                if t.doc_freq >= 2 {
                    let groups: std::collections::HashSet<_> = t
                        .postings
                        .iter()
                        .map(|&(d, _, _)| corpus.doc(d).unwrap().group)
                        .collect();
                    assert_eq!(
                        groups.len(),
                        1,
                        "topic term {name} appears in multiple groups"
                    );
                    checked += 1;
                    if checked > 20 {
                        break;
                    }
                }
            }
        }
        assert!(checked > 0, "no topic-specific terms found to check");
    }
}
