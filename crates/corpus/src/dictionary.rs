//! Term dictionary: interns term strings into dense [`TermId`]s.
//!
//! Dense ids let every other crate store per-term data in flat vectors
//! (posting directories, RSTF tables, merge assignments) instead of hash maps
//! keyed by strings.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Identifier of a term inside one corpus / index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TermId(pub u32);

impl TermId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for TermId {
    fn from(v: u32) -> Self {
        TermId(v)
    }
}

impl std::fmt::Display for TermId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Bidirectional mapping between term strings and dense [`TermId`]s.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TermDictionary {
    terms: Vec<String>,
    ids: HashMap<String, TermId>,
}

impl TermDictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        TermDictionary::default()
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if the dictionary holds no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Interns `term`, returning its id.  Existing terms keep their id.
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(term.to_string());
        self.ids.insert(term.to_string(), id);
        id
    }

    /// Looks up an existing term without interning it.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// Returns the string of a term id, if it exists.
    pub fn term(&self, id: TermId) -> Option<&str> {
        self.terms.get(id.index()).map(String::as_str)
    }

    /// Iterates over `(TermId, &str)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, s)| (TermId(i as u32), s.as_str()))
    }

    /// Returns all term ids, in id order.
    pub fn ids(&self) -> impl Iterator<Item = TermId> + '_ {
        (0..self.terms.len() as u32).map(TermId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut d = TermDictionary::new();
        let a = d.intern("alpha");
        let b = d.intern("beta");
        assert_ne!(a, b);
        assert_eq!(d.intern("alpha"), a);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_in_insertion_order() {
        let mut d = TermDictionary::new();
        for (i, w) in ["a", "b", "c", "d"].iter().enumerate() {
            assert_eq!(d.intern(w), TermId(i as u32));
        }
    }

    #[test]
    fn lookup_of_unknown_term_is_none() {
        let d = TermDictionary::new();
        assert!(d.get("missing").is_none());
        assert!(d.term(TermId(0)).is_none());
        assert!(d.is_empty());
    }

    #[test]
    fn roundtrip_between_term_and_id() {
        let mut d = TermDictionary::new();
        let id = d.intern("vergütung");
        assert_eq!(d.term(id), Some("vergütung"));
        assert_eq!(d.get("vergütung"), Some(id));
    }

    #[test]
    fn iteration_yields_all_terms() {
        let mut d = TermDictionary::new();
        d.intern("x");
        d.intern("y");
        let all: Vec<_> = d.iter().map(|(id, s)| (id.0, s.to_string())).collect();
        assert_eq!(all, vec![(0, "x".to_string()), (1, "y".to_string())]);
        assert_eq!(d.ids().count(), 2);
    }
}
