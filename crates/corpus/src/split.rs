//! Training / control splits for RSTF initialization.
//!
//! Section 6.1.2 of the paper: "To obtain a representative sample for the
//! RSTF initialization we randomly selected 30% of the documents from each
//! data set as a training set.  We randomly chose about one third from the
//! initial sample for the control set and used the rest as training data and
//! minimized variance among the TRS values using cross-validation."

use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::corpus::Corpus;
use crate::doc::DocId;
use crate::error::CorpusError;

/// Configuration of [`sample_split`].
#[derive(Debug, Clone, Copy)]
pub struct SplitConfig {
    /// Fraction of the corpus sampled for RSTF initialization (paper: 0.30).
    pub sample_fraction: f64,
    /// Fraction of the sample held out as the cross-validation control set
    /// (paper: one third).
    pub control_fraction: f64,
    /// RNG seed; the split is fully determined by `(corpus, config)`.
    pub seed: u64,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            sample_fraction: 0.30,
            control_fraction: 1.0 / 3.0,
            seed: 0x5eedb,
        }
    }
}

/// Result of [`sample_split`].
#[derive(Debug, Clone)]
pub struct TrainControlSplit {
    /// Documents used to fit the per-term score distributions (the "training
    /// data" of Section 5.1.1).
    pub training: Vec<DocId>,
    /// Documents used to evaluate TRS uniformity when selecting σ
    /// (Section 5.1.3).
    pub control: Vec<DocId>,
    /// Documents outside the sample; they are indexed normally and their TRS
    /// values exercise the generalization of the RSTF.
    pub remainder: Vec<DocId>,
}

impl TrainControlSplit {
    /// Total number of documents across the three parts.
    pub fn len(&self) -> usize {
        self.training.len() + self.control.len() + self.remainder.len()
    }

    /// Returns `true` if the split contains no documents at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Randomly splits the corpus into training / control / remainder documents.
///
/// The sample (training + control) contains `ceil(sample_fraction * |D|)`
/// documents, of which `round(control_fraction * sample)` form the control
/// set.  With fewer than three documents the whole corpus becomes training
/// data so that callers always have something to fit an RSTF on.
pub fn sample_split(
    corpus: &Corpus,
    config: SplitConfig,
) -> Result<TrainControlSplit, CorpusError> {
    if !(0.0..=1.0).contains(&config.sample_fraction) {
        return Err(CorpusError::InvalidConfig(format!(
            "sample_fraction must be in [0,1], got {}",
            config.sample_fraction
        )));
    }
    if !(0.0..1.0).contains(&config.control_fraction) {
        return Err(CorpusError::InvalidConfig(format!(
            "control_fraction must be in [0,1), got {}",
            config.control_fraction
        )));
    }
    let mut ids: Vec<DocId> = corpus.doc_ids().collect();
    if ids.len() < 3 {
        return Ok(TrainControlSplit {
            training: ids,
            control: Vec::new(),
            remainder: Vec::new(),
        });
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    ids.shuffle(&mut rng);
    let sample_size = ((ids.len() as f64) * config.sample_fraction).ceil() as usize;
    let sample_size = sample_size.clamp(1, ids.len());
    let control_size = ((sample_size as f64) * config.control_fraction).round() as usize;
    let control_size = control_size.min(sample_size.saturating_sub(1));

    let control: Vec<DocId> = ids[..control_size].to_vec();
    let training: Vec<DocId> = ids[control_size..sample_size].to_vec();
    let remainder: Vec<DocId> = ids[sample_size..].to_vec();
    Ok(TrainControlSplit {
        training,
        control,
        remainder,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;
    use crate::doc::{Document, GroupId};

    fn corpus(n: usize) -> Corpus {
        let mut b = CorpusBuilder::new();
        for i in 0..n {
            b.add_document(Document::new(
                format!("doc-{i}"),
                GroupId(0),
                format!("term{} alpha beta", i % 7),
            ))
            .unwrap();
        }
        b.build()
    }

    #[test]
    fn split_partitions_all_documents_exactly_once() {
        let c = corpus(100);
        let s = sample_split(&c, SplitConfig::default()).unwrap();
        assert_eq!(s.len(), 100);
        let mut all: Vec<DocId> = s
            .training
            .iter()
            .chain(s.control.iter())
            .chain(s.remainder.iter())
            .copied()
            .collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn split_sizes_follow_the_paper_fractions() {
        let c = corpus(1000);
        let s = sample_split(&c, SplitConfig::default()).unwrap();
        let sample = s.training.len() + s.control.len();
        assert_eq!(sample, 300);
        assert!((s.control.len() as i64 - 100).abs() <= 1);
        assert_eq!(s.remainder.len(), 700);
    }

    #[test]
    fn split_is_deterministic_for_a_seed_and_differs_across_seeds() {
        let c = corpus(50);
        let a = sample_split(&c, SplitConfig::default()).unwrap();
        let b = sample_split(&c, SplitConfig::default()).unwrap();
        assert_eq!(a.training, b.training);
        assert_eq!(a.control, b.control);
        let other = sample_split(
            &c,
            SplitConfig {
                seed: 123,
                ..SplitConfig::default()
            },
        )
        .unwrap();
        assert_ne!(a.training, other.training);
    }

    #[test]
    fn tiny_corpora_become_pure_training_data() {
        let c = corpus(2);
        let s = sample_split(&c, SplitConfig::default()).unwrap();
        assert_eq!(s.training.len(), 2);
        assert!(s.control.is_empty());
        assert!(s.remainder.is_empty());
    }

    #[test]
    fn invalid_fractions_are_rejected() {
        let c = corpus(10);
        assert!(sample_split(
            &c,
            SplitConfig {
                sample_fraction: 1.5,
                ..SplitConfig::default()
            }
        )
        .is_err());
        assert!(sample_split(
            &c,
            SplitConfig {
                control_fraction: 1.0,
                ..SplitConfig::default()
            }
        )
        .is_err());
    }
}
