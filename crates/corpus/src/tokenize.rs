//! Tokenization of document bodies into terms.
//!
//! The paper does not prescribe a particular analyzer; what matters for the
//! evaluation is that term statistics (term frequency, document frequency)
//! are computed over a consistent term universe.  The tokenizer here performs
//! the standard pipeline used by the original Zerber prototype's Lucene-based
//! indexer: Unicode-aware lowercasing, alphanumeric token extraction, optional
//! stopword removal and optional length filtering.

use std::collections::HashSet;

/// Configuration of the [`Tokenizer`].
#[derive(Debug, Clone)]
pub struct TokenizeConfig {
    /// Drop tokens shorter than this many characters (default 1 = keep all).
    pub min_len: usize,
    /// Drop tokens longer than this many characters (default 64).
    pub max_len: usize,
    /// Remove stopwords (default true).  The built-in list contains the most
    /// frequent English and German function words; the paper's example terms
    /// ("nicht", "and", …) are frequent function words, so generators that
    /// want to *keep* them can disable stopword removal.
    pub remove_stopwords: bool,
    /// Additional stopwords supplied by the caller.
    pub extra_stopwords: Vec<String>,
}

impl Default for TokenizeConfig {
    fn default() -> Self {
        TokenizeConfig {
            min_len: 1,
            max_len: 64,
            remove_stopwords: false,
            extra_stopwords: Vec::new(),
        }
    }
}

/// The default English/German stopword list used when
/// [`TokenizeConfig::remove_stopwords`] is enabled.
pub const DEFAULT_STOPWORDS: &[&str] = &[
    // English
    "the", "a", "an", "and", "or", "of", "to", "in", "is", "are", "was", "were", "it", "this",
    "that", "for", "on", "with", "as", "by", "at", "be", "from", "not", "but", "we", "you", "they",
    "he", "she", "his", "her", "its", "our", "their", // German
    "der", "die", "das", "und", "oder", "nicht", "ein", "eine", "ist", "sind", "war", "waren",
    "zu", "in", "im", "auf", "mit", "von", "fuer", "für", "als", "bei", "aus", "dass", "wir",
    "sie", "er", "es", "ich", "du",
];

/// A deterministic, allocation-conscious tokenizer.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    config: TokenizeConfig,
    stopwords: HashSet<String>,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Tokenizer::new(TokenizeConfig::default())
    }
}

impl Tokenizer {
    /// Creates a tokenizer from a configuration.
    pub fn new(config: TokenizeConfig) -> Self {
        let mut stopwords = HashSet::new();
        if config.remove_stopwords {
            for w in DEFAULT_STOPWORDS {
                stopwords.insert((*w).to_string());
            }
            for w in &config.extra_stopwords {
                stopwords.insert(w.to_lowercase());
            }
        }
        Tokenizer { config, stopwords }
    }

    /// Returns the active configuration.
    pub fn config(&self) -> &TokenizeConfig {
        &self.config
    }

    /// Returns `true` if `token` (already lowercased) is filtered out.
    fn is_filtered(&self, token: &str) -> bool {
        let n = token.chars().count();
        if n < self.config.min_len || n > self.config.max_len {
            return true;
        }
        if self.config.remove_stopwords && self.stopwords.contains(token) {
            return true;
        }
        false
    }

    /// Tokenizes `text` into lowercase terms, in document order.
    ///
    /// A token is a maximal run of alphanumeric characters; everything else is
    /// a separator.  Digits are kept (document identifiers such as `1.txt`
    /// contribute the token `1` and `txt`), matching a plain full-text
    /// indexer.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut current = String::new();
        for ch in text.chars() {
            if ch.is_alphanumeric() {
                for lc in ch.to_lowercase() {
                    current.push(lc);
                }
            } else if !current.is_empty() {
                if !self.is_filtered(&current) {
                    out.push(std::mem::take(&mut current));
                } else {
                    current.clear();
                }
            }
        }
        if !current.is_empty() && !self.is_filtered(&current) {
            out.push(current);
        }
        out
    }

    /// Tokenizes and counts terms in a single pass, returning `(term, count)`
    /// pairs sorted by term.  The sum of the counts is the document length
    /// `|d|` used by Equation 4 of the paper.
    pub fn term_counts(&self, text: &str) -> Vec<(String, u32)> {
        let mut counts: std::collections::BTreeMap<String, u32> = std::collections::BTreeMap::new();
        for tok in self.tokenize(text) {
            *counts.entry(tok).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_non_alphanumeric_and_lowercases() {
        let t = Tokenizer::default();
        assert_eq!(
            t.tokenize("ImClone AND synthesis, 2.doc!"),
            vec!["imclone", "and", "synthesis", "2", "doc"]
        );
    }

    #[test]
    fn empty_input_produces_no_tokens() {
        let t = Tokenizer::default();
        assert!(t.tokenize("").is_empty());
        assert!(t.tokenize("   .,;!?").is_empty());
    }

    #[test]
    fn stopwords_are_removed_when_enabled() {
        let t = Tokenizer::new(TokenizeConfig {
            remove_stopwords: true,
            ..TokenizeConfig::default()
        });
        let toks = t.tokenize("the compound and the process nicht management");
        assert_eq!(toks, vec!["compound", "process", "management"]);
    }

    #[test]
    fn extra_stopwords_are_case_insensitive() {
        let t = Tokenizer::new(TokenizeConfig {
            remove_stopwords: true,
            extra_stopwords: vec!["Betreff".into()],
            ..TokenizeConfig::default()
        });
        assert!(t
            .tokenize("Betreff: Projektplan")
            .contains(&"projektplan".to_string()));
        assert!(!t
            .tokenize("Betreff: Projektplan")
            .contains(&"betreff".to_string()));
    }

    #[test]
    fn length_filters_apply_to_character_counts() {
        let t = Tokenizer::new(TokenizeConfig {
            min_len: 3,
            max_len: 5,
            ..TokenizeConfig::default()
        });
        assert_eq!(t.tokenize("ab abc abcde abcdef"), vec!["abc", "abcde"]);
    }

    #[test]
    fn term_counts_sum_to_document_length() {
        let t = Tokenizer::default();
        let text = "alpha beta alpha gamma beta alpha";
        let counts = t.term_counts(text);
        let total: u32 = counts.iter().map(|(_, c)| *c).sum();
        assert_eq!(total as usize, t.tokenize(text).len());
        assert_eq!(
            counts,
            vec![("alpha".into(), 3), ("beta".into(), 2), ("gamma".into(), 1)]
        );
    }

    #[test]
    fn unicode_text_is_handled() {
        let t = Tokenizer::default();
        let toks = t.tokenize("Vergütung für Müller");
        assert_eq!(toks, vec!["vergütung", "für", "müller"]);
    }
}
