//! Document model: identifiers, access-control groups and raw documents.
//!
//! The paper's scenario (Section 2) indexes access-controlled documents shared
//! inside collaboration groups.  Every document therefore carries a
//! [`GroupId`]; the index server later uses the group to decide whether a
//! querying user may receive a posting element referencing the document.

use serde::{Deserialize, Serialize};

/// Identifier of a document inside one corpus.
///
/// Document ids are dense (`0..corpus.num_docs()`); they are assigned in
/// insertion order by [`crate::CorpusBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DocId(pub u32);

impl DocId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for DocId {
    fn from(v: u32) -> Self {
        DocId(v)
    }
}

impl std::fmt::Display for DocId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Identifier of a collaboration group (access-control unit).
///
/// In the Stud IP dataset a group corresponds to a course; in the ODP dataset
/// a group corresponds to a topic (Section 6.1.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GroupId(pub u32);

impl GroupId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for GroupId {
    fn from(v: u32) -> Self {
        GroupId(v)
    }
}

impl std::fmt::Display for GroupId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A raw (untokenized) document as handed to the corpus builder.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Document {
    /// External name, e.g. a file name (`"1.txt"`, `"2.doc"`); must be unique
    /// within a corpus.
    pub name: String,
    /// The access-control group the document is shared with.
    pub group: GroupId,
    /// The document body.  The tokenizer decides what counts as a term.
    pub body: String,
}

impl Document {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, group: GroupId, body: impl Into<String>) -> Self {
        Document {
            name: name.into(),
            group,
            body: body.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_id_roundtrip_and_display() {
        let id = DocId::from(42u32);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "d42");
        assert_eq!(id, DocId(42));
    }

    #[test]
    fn group_id_roundtrip_and_display() {
        let g = GroupId::from(7u32);
        assert_eq!(g.index(), 7);
        assert_eq!(g.to_string(), "g7");
    }

    #[test]
    fn doc_ids_are_ordered_by_value() {
        let mut ids = vec![DocId(3), DocId(1), DocId(2)];
        ids.sort();
        assert_eq!(ids, vec![DocId(1), DocId(2), DocId(3)]);
    }

    #[test]
    fn document_constructor_stores_fields() {
        let d = Document::new("report.txt", GroupId(2), "imclone and synthesis");
        assert_eq!(d.name, "report.txt");
        assert_eq!(d.group, GroupId(2));
        assert!(d.body.contains("imclone"));
    }
}
