//! Corpus-wide term statistics.
//!
//! These statistics are exactly the quantities the paper reasons about:
//!
//! * the term frequency distribution of a term over the documents containing
//!   it (Figure 4, power-law on a log-log plot),
//! * the **normalized** term frequency distribution `TF/|d|` (Figure 5), which
//!   is the relevance score of Equation 4 and the input of the RSTF,
//! * the document frequency `n_d(t)` and the term probability
//!   `p_t = n_d(t) / |D|` ("normalized document frequency", Section 3.1) used
//!   by the r-confidentiality condition of Definition 2 and by the response
//!   size heuristics of Section 5.2.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::corpus::Corpus;
use crate::dictionary::TermId;
use crate::doc::DocId;
use crate::error::CorpusError;

/// Per-term statistics extracted from a corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TermStats {
    /// The term.
    pub term: TermId,
    /// Document frequency `n_d(t)`: number of documents containing the term.
    pub doc_freq: u32,
    /// Total number of occurrences of the term in the corpus.
    pub collection_freq: u64,
    /// `(doc, tf, relevance)` for every document containing the term, in
    /// document-id order.  `relevance = tf / |d|` (Equation 4).
    pub postings: Vec<(DocId, u32, f64)>,
}

impl TermStats {
    /// Term probability `p_t = n_d(t) / |D|` (Section 3.1 of the paper).
    pub fn probability(&self, num_docs: usize) -> f64 {
        if num_docs == 0 {
            return 0.0;
        }
        f64::from(self.doc_freq) / num_docs as f64
    }

    /// Term frequencies sorted in descending order — the series plotted in
    /// Figure 4 of the paper (rank on the x axis, TF on the y axis, log-log).
    pub fn tf_distribution(&self) -> Vec<u32> {
        let mut tfs: Vec<u32> = self.postings.iter().map(|&(_, tf, _)| tf).collect();
        tfs.sort_unstable_by(|a, b| b.cmp(a));
        tfs
    }

    /// Normalized term frequencies (`TF/|d|`, Equation 4) sorted in descending
    /// order — the series plotted in Figure 5.
    pub fn normalized_tf_distribution(&self) -> Vec<f64> {
        let mut rel: Vec<f64> = self.postings.iter().map(|&(_, _, r)| r).collect();
        rel.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        rel
    }

    /// All raw relevance scores (unsorted, document-id order).
    pub fn relevance_scores(&self) -> Vec<f64> {
        self.postings.iter().map(|&(_, _, r)| r).collect()
    }
}

/// Statistics for every term of a corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusStats {
    num_docs: usize,
    total_tokens: u64,
    terms: Vec<TermStats>,
}

impl CorpusStats {
    /// Computes statistics for every term of `corpus`.
    pub fn compute(corpus: &Corpus) -> Self {
        let mut per_term: HashMap<TermId, TermStats> = HashMap::new();
        for (doc_id, doc) in corpus.docs() {
            for &(term, tf) in &doc.term_counts {
                let entry = per_term.entry(term).or_insert_with(|| TermStats {
                    term,
                    doc_freq: 0,
                    collection_freq: 0,
                    postings: Vec::new(),
                });
                entry.doc_freq += 1;
                entry.collection_freq += u64::from(tf);
                let relevance = if doc.length == 0 {
                    0.0
                } else {
                    f64::from(tf) / f64::from(doc.length)
                };
                entry.postings.push((doc_id, tf, relevance));
            }
        }
        let mut terms: Vec<TermStats> = per_term.into_values().collect();
        terms.sort_unstable_by_key(|t| t.term);
        CorpusStats {
            num_docs: corpus.num_docs(),
            total_tokens: corpus.total_tokens(),
            terms,
        }
    }

    /// Number of documents in the underlying corpus.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Total number of term occurrences in the corpus.
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Number of distinct terms that occur at least once.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Statistics for a single term.
    pub fn term(&self, term: TermId) -> Result<&TermStats, CorpusError> {
        self.terms
            .binary_search_by_key(&term, |t| t.term)
            .map(|i| &self.terms[i])
            .map_err(|_| CorpusError::UnknownTerm(term.0))
    }

    /// Iterates over all term statistics in term-id order.
    pub fn terms(&self) -> impl Iterator<Item = &TermStats> {
        self.terms.iter()
    }

    /// Term probability `p_t` (Section 3.1).
    pub fn probability(&self, term: TermId) -> Result<f64, CorpusError> {
        Ok(self.term(term)?.probability(self.num_docs))
    }

    /// Document frequency `n_d(t)`.
    pub fn doc_freq(&self, term: TermId) -> Result<u32, CorpusError> {
        Ok(self.term(term)?.doc_freq)
    }

    /// Inverse document frequency `log(|D| / n_d(t))` (the factor of
    /// Equation 3 that Zerber+R deliberately leaves out of the confidential
    /// score; exposed for the ordinary-index baseline).
    pub fn idf(&self, term: TermId) -> Result<f64, CorpusError> {
        let df = self.doc_freq(term)?;
        if df == 0 {
            return Ok(0.0);
        }
        Ok((self.num_docs as f64 / f64::from(df)).ln())
    }

    /// Terms sorted by descending document frequency; useful for picking the
    /// "frequent" and "rare" example terms of Figures 4/5/8.
    pub fn terms_by_doc_freq(&self) -> Vec<TermId> {
        let mut ids: Vec<(TermId, u32)> = self.terms.iter().map(|t| (t.term, t.doc_freq)).collect();
        ids.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ids.into_iter().map(|(t, _)| t).collect()
    }

    /// Mean document length in terms.
    pub fn avg_doc_length(&self) -> f64 {
        if self.num_docs == 0 {
            return 0.0;
        }
        self.total_tokens as f64 / self.num_docs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;
    use crate::doc::{Document, GroupId};

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        b.add_document(Document::new("1", GroupId(0), "and imclone and compound"))
            .unwrap();
        b.add_document(Document::new("2", GroupId(0), "and and process"))
            .unwrap();
        b.add_document(Document::new("3", GroupId(1), "compound process synthesis"))
            .unwrap();
        b.build()
    }

    #[test]
    fn doc_freq_and_collection_freq_are_counted() {
        let c = corpus();
        let s = CorpusStats::compute(&c);
        let and = c.dictionary().get("and").unwrap();
        let t = s.term(and).unwrap();
        assert_eq!(t.doc_freq, 2);
        assert_eq!(t.collection_freq, 4);
        assert_eq!(s.num_terms(), c.num_terms());
        assert_eq!(s.num_docs(), 3);
    }

    #[test]
    fn probability_is_normalized_document_frequency() {
        let c = corpus();
        let s = CorpusStats::compute(&c);
        let and = c.dictionary().get("and").unwrap();
        let synthesis = c.dictionary().get("synthesis").unwrap();
        assert!((s.probability(and).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.probability(synthesis).unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn tf_distribution_is_sorted_descending() {
        let c = corpus();
        let s = CorpusStats::compute(&c);
        let and = c.dictionary().get("and").unwrap();
        assert_eq!(s.term(and).unwrap().tf_distribution(), vec![2, 2]);
        let norm = s.term(and).unwrap().normalized_tf_distribution();
        assert!(norm.windows(2).all(|w| w[0] >= w[1]));
        assert!((norm[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn relevance_in_postings_matches_equation_4() {
        let c = corpus();
        let s = CorpusStats::compute(&c);
        let imclone = c.dictionary().get("imclone").unwrap();
        let t = s.term(imclone).unwrap();
        assert_eq!(t.postings.len(), 1);
        let (_, tf, rel) = t.postings[0];
        assert_eq!(tf, 1);
        assert!((rel - 0.25).abs() < 1e-12);
    }

    #[test]
    fn idf_is_larger_for_rarer_terms() {
        let c = corpus();
        let s = CorpusStats::compute(&c);
        let and = c.dictionary().get("and").unwrap();
        let imclone = c.dictionary().get("imclone").unwrap();
        assert!(s.idf(imclone).unwrap() > s.idf(and).unwrap());
    }

    #[test]
    fn terms_by_doc_freq_puts_frequent_terms_first() {
        let c = corpus();
        let s = CorpusStats::compute(&c);
        let order = s.terms_by_doc_freq();
        let and = c.dictionary().get("and").unwrap();
        assert_eq!(order[0], and);
    }

    #[test]
    fn unknown_term_is_an_error() {
        let c = corpus();
        let s = CorpusStats::compute(&c);
        assert!(matches!(
            s.term(TermId(9999)),
            Err(CorpusError::UnknownTerm(9999))
        ));
    }

    #[test]
    fn avg_doc_length_matches_totals() {
        let c = corpus();
        let s = CorpusStats::compute(&c);
        assert!((s.avg_doc_length() - (4.0 + 3.0 + 3.0) / 3.0).abs() < 1e-12);
        assert_eq!(s.total_tokens(), 10);
    }
}
