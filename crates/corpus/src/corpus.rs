//! In-memory corpus: tokenized documents plus the shared term dictionary.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::dictionary::{TermDictionary, TermId};
use crate::doc::{DocId, Document, GroupId};
use crate::error::CorpusError;
use crate::tokenize::Tokenizer;

/// A tokenized document stored inside a [`Corpus`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DocumentEntry {
    /// External name of the document (unique within the corpus).
    pub name: String,
    /// Access-control group.
    pub group: GroupId,
    /// Document length `|d|` in terms (with multiplicity), the denominator of
    /// Equation 4 in the paper.
    pub length: u32,
    /// Term frequencies `TF_t(d)`, sorted by term id.
    pub term_counts: Vec<(TermId, u32)>,
}

impl DocumentEntry {
    /// Term frequency of `term` in this document (0 if absent).
    pub fn tf(&self, term: TermId) -> u32 {
        self.term_counts
            .binary_search_by_key(&term, |&(t, _)| t)
            .map(|i| self.term_counts[i].1)
            .unwrap_or(0)
    }

    /// Relevance score of `term` for this document, `TF / |d|` (Equation 4).
    pub fn relevance(&self, term: TermId) -> f64 {
        if self.length == 0 {
            return 0.0;
        }
        f64::from(self.tf(term)) / f64::from(self.length)
    }

    /// Number of distinct terms in the document.
    pub fn distinct_terms(&self) -> usize {
        self.term_counts.len()
    }
}

/// A fully built, immutable corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    dictionary: TermDictionary,
    docs: Vec<DocumentEntry>,
    num_groups: u32,
}

impl Corpus {
    /// Number of documents `|D|`.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Number of distinct terms in the corpus.
    pub fn num_terms(&self) -> usize {
        self.dictionary.len()
    }

    /// Number of access-control groups.
    pub fn num_groups(&self) -> usize {
        self.num_groups as usize
    }

    /// The shared term dictionary.
    pub fn dictionary(&self) -> &TermDictionary {
        &self.dictionary
    }

    /// Returns a document by id.
    pub fn doc(&self, id: DocId) -> Result<&DocumentEntry, CorpusError> {
        self.docs
            .get(id.index())
            .ok_or(CorpusError::UnknownDocument(id.0))
    }

    /// Iterates over `(DocId, &DocumentEntry)` pairs in id order.
    pub fn docs(&self) -> impl Iterator<Item = (DocId, &DocumentEntry)> {
        self.docs
            .iter()
            .enumerate()
            .map(|(i, d)| (DocId(i as u32), d))
    }

    /// All document ids.
    pub fn doc_ids(&self) -> impl Iterator<Item = DocId> + '_ {
        (0..self.docs.len() as u32).map(DocId)
    }

    /// Total number of term occurrences (sum of document lengths).
    pub fn total_tokens(&self) -> u64 {
        self.docs.iter().map(|d| u64::from(d.length)).sum()
    }

    /// Relevance score (Equation 4) of a `(term, doc)` pair.
    pub fn relevance(&self, term: TermId, doc: DocId) -> Result<f64, CorpusError> {
        Ok(self.doc(doc)?.relevance(term))
    }

    /// Returns the documents belonging to `group`.
    pub fn docs_in_group(&self, group: GroupId) -> Vec<DocId> {
        self.docs()
            .filter(|(_, d)| d.group == group)
            .map(|(id, _)| id)
            .collect()
    }
}

/// Incremental corpus builder.
///
/// ```
/// use zerber_corpus::{CorpusBuilder, Document, GroupId};
///
/// let mut b = CorpusBuilder::new();
/// b.add_document(Document::new("1.txt", GroupId(0), "imclone and synthesis and")).unwrap();
/// b.add_document(Document::new("2.doc", GroupId(0), "and and and process")).unwrap();
/// let corpus = b.build();
/// assert_eq!(corpus.num_docs(), 2);
/// let and = corpus.dictionary().get("and").unwrap();
/// assert_eq!(corpus.doc(zerber_corpus::DocId(1)).unwrap().tf(and), 3);
/// ```
#[derive(Debug, Default)]
pub struct CorpusBuilder {
    tokenizer: Tokenizer,
    dictionary: TermDictionary,
    docs: Vec<DocumentEntry>,
    names: HashMap<String, DocId>,
    max_group: u32,
}

impl CorpusBuilder {
    /// Creates a builder with the default tokenizer.
    pub fn new() -> Self {
        CorpusBuilder::default()
    }

    /// Creates a builder with a custom tokenizer.
    pub fn with_tokenizer(tokenizer: Tokenizer) -> Self {
        CorpusBuilder {
            tokenizer,
            ..CorpusBuilder::default()
        }
    }

    /// Number of documents added so far.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Returns `true` if no documents were added yet.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Tokenizes and adds a raw document, returning its id.
    ///
    /// Fails with [`CorpusError::DuplicateDocument`] if the name was already
    /// used and with [`CorpusError::EmptyDocument`] if tokenization produced
    /// no terms.
    pub fn add_document(&mut self, doc: Document) -> Result<DocId, CorpusError> {
        if self.names.contains_key(&doc.name) {
            return Err(CorpusError::DuplicateDocument(doc.name));
        }
        let counts = self.tokenizer.term_counts(&doc.body);
        if counts.is_empty() {
            return Err(CorpusError::EmptyDocument(doc.name));
        }
        let mut term_counts: Vec<(TermId, u32)> = counts
            .into_iter()
            .map(|(term, c)| (self.dictionary.intern(&term), c))
            .collect();
        term_counts.sort_unstable_by_key(|&(t, _)| t);
        let length = term_counts.iter().map(|&(_, c)| c).sum();
        let id = DocId(self.docs.len() as u32);
        self.max_group = self.max_group.max(doc.group.0 + 1);
        self.names.insert(doc.name.clone(), id);
        self.docs.push(DocumentEntry {
            name: doc.name,
            group: doc.group,
            length,
            term_counts,
        });
        Ok(id)
    }

    /// Adds a pre-tokenized document given as `(term, count)` pairs.
    ///
    /// Used by the synthetic generators, which produce term counts directly
    /// without materializing a text body.
    pub fn add_counted_document(
        &mut self,
        name: impl Into<String>,
        group: GroupId,
        counts: &[(String, u32)],
    ) -> Result<DocId, CorpusError> {
        let name = name.into();
        if self.names.contains_key(&name) {
            return Err(CorpusError::DuplicateDocument(name));
        }
        if counts.iter().all(|&(_, c)| c == 0) || counts.is_empty() {
            return Err(CorpusError::EmptyDocument(name));
        }
        let mut merged: HashMap<TermId, u32> = HashMap::with_capacity(counts.len());
        for (term, c) in counts {
            if *c == 0 {
                continue;
            }
            *merged.entry(self.dictionary.intern(term)).or_insert(0) += c;
        }
        let mut term_counts: Vec<(TermId, u32)> = merged.into_iter().collect();
        term_counts.sort_unstable_by_key(|&(t, _)| t);
        let length = term_counts.iter().map(|&(_, c)| c).sum();
        let id = DocId(self.docs.len() as u32);
        self.max_group = self.max_group.max(group.0 + 1);
        self.names.insert(name.clone(), id);
        self.docs.push(DocumentEntry {
            name,
            group,
            length,
            term_counts,
        });
        Ok(id)
    }

    /// Finishes building and returns the immutable corpus.
    pub fn build(self) -> Corpus {
        Corpus {
            dictionary: self.dictionary,
            docs: self.docs,
            num_groups: self.max_group,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        b.add_document(Document::new(
            "1.txt",
            GroupId(0),
            "imclone and imclone synthesis and",
        ))
        .unwrap();
        b.add_document(Document::new(
            "2.doc",
            GroupId(1),
            "and and and and process",
        ))
        .unwrap();
        b.add_document(Document::new("3.txt", GroupId(0), "management synthesis"))
            .unwrap();
        b.build()
    }

    #[test]
    fn builder_assigns_sequential_doc_ids() {
        let mut b = CorpusBuilder::new();
        let a = b
            .add_document(Document::new("a", GroupId(0), "x y"))
            .unwrap();
        let c = b.add_document(Document::new("b", GroupId(0), "z")).unwrap();
        assert_eq!(a, DocId(0));
        assert_eq!(c, DocId(1));
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut b = CorpusBuilder::new();
        b.add_document(Document::new("a", GroupId(0), "x")).unwrap();
        let err = b
            .add_document(Document::new("a", GroupId(0), "y"))
            .unwrap_err();
        assert_eq!(err, CorpusError::DuplicateDocument("a".into()));
    }

    #[test]
    fn empty_documents_are_rejected() {
        let mut b = CorpusBuilder::new();
        let err = b
            .add_document(Document::new("e", GroupId(0), "  .,  "))
            .unwrap_err();
        assert_eq!(err, CorpusError::EmptyDocument("e".into()));
    }

    #[test]
    fn term_frequencies_and_lengths_match_the_text() {
        let c = small_corpus();
        let imclone = c.dictionary().get("imclone").unwrap();
        let and = c.dictionary().get("and").unwrap();
        let d0 = c.doc(DocId(0)).unwrap();
        let d1 = c.doc(DocId(1)).unwrap();
        assert_eq!(d0.tf(imclone), 2);
        assert_eq!(d0.tf(and), 2);
        assert_eq!(d0.length, 5);
        assert_eq!(d1.tf(and), 4);
        assert_eq!(d1.tf(imclone), 0);
        assert_eq!(d1.length, 5);
    }

    #[test]
    fn relevance_is_tf_over_length() {
        let c = small_corpus();
        let and = c.dictionary().get("and").unwrap();
        assert!((c.relevance(and, DocId(0)).unwrap() - 2.0 / 5.0).abs() < 1e-12);
        assert!((c.relevance(and, DocId(1)).unwrap() - 4.0 / 5.0).abs() < 1e-12);
        // Figure 3 of the paper: "and" in 2.doc has the higher TF, so sorting
        // by raw relevance would put 2.doc ahead of 1.txt.
        assert!(c.relevance(and, DocId(1)).unwrap() > c.relevance(and, DocId(0)).unwrap());
    }

    #[test]
    fn unknown_document_lookup_fails() {
        let c = small_corpus();
        assert!(matches!(
            c.doc(DocId(99)),
            Err(CorpusError::UnknownDocument(99))
        ));
    }

    #[test]
    fn groups_are_counted_and_filterable() {
        let c = small_corpus();
        assert_eq!(c.num_groups(), 2);
        assert_eq!(c.docs_in_group(GroupId(0)), vec![DocId(0), DocId(2)]);
        assert_eq!(c.docs_in_group(GroupId(1)), vec![DocId(1)]);
    }

    #[test]
    fn counted_documents_merge_duplicate_terms() {
        let mut b = CorpusBuilder::new();
        let id = b
            .add_counted_document(
                "synth-0",
                GroupId(0),
                &[("alpha".into(), 2), ("alpha".into(), 3), ("beta".into(), 1)],
            )
            .unwrap();
        let c = b.build();
        let alpha = c.dictionary().get("alpha").unwrap();
        assert_eq!(c.doc(id).unwrap().tf(alpha), 5);
        assert_eq!(c.doc(id).unwrap().length, 6);
    }

    #[test]
    fn counted_documents_reject_all_zero_counts() {
        let mut b = CorpusBuilder::new();
        let err = b
            .add_counted_document("z", GroupId(0), &[("alpha".into(), 0)])
            .unwrap_err();
        assert!(matches!(err, CorpusError::EmptyDocument(_)));
    }

    #[test]
    fn total_tokens_sums_document_lengths() {
        let c = small_corpus();
        assert_eq!(c.total_tokens(), 5 + 5 + 2);
    }
}
