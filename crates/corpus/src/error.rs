//! Error type shared by the corpus substrate.

use std::fmt;

/// Errors produced while building or querying a corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusError {
    /// A document id was used that does not exist in the corpus.
    UnknownDocument(u32),
    /// A term id was used that does not exist in the dictionary.
    UnknownTerm(u32),
    /// A group id was used that does not exist in the corpus.
    UnknownGroup(u32),
    /// A document with the same external name was added twice.
    DuplicateDocument(String),
    /// A configuration value was out of its valid range.
    InvalidConfig(String),
    /// A document contained no indexable terms after tokenization.
    EmptyDocument(String),
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::UnknownDocument(id) => write!(f, "unknown document id {id}"),
            CorpusError::UnknownTerm(id) => write!(f, "unknown term id {id}"),
            CorpusError::UnknownGroup(id) => write!(f, "unknown group id {id}"),
            CorpusError::DuplicateDocument(name) => {
                write!(f, "document {name:?} was added more than once")
            }
            CorpusError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CorpusError::EmptyDocument(name) => {
                write!(f, "document {name:?} contains no indexable terms")
            }
        }
    }
}

impl std::error::Error for CorpusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_the_offending_value() {
        assert!(CorpusError::UnknownDocument(7).to_string().contains('7'));
        assert!(CorpusError::UnknownTerm(9).to_string().contains('9'));
        assert!(CorpusError::UnknownGroup(3).to_string().contains('3'));
        assert!(CorpusError::DuplicateDocument("a.txt".into())
            .to_string()
            .contains("a.txt"));
        assert!(CorpusError::InvalidConfig("bad".into())
            .to_string()
            .contains("bad"));
        assert!(CorpusError::EmptyDocument("e.txt".into())
            .to_string()
            .contains("e.txt"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let err: Box<dyn std::error::Error> = Box::new(CorpusError::UnknownTerm(1));
        assert!(err.source().is_none());
    }
}
