//! Score-distribution fingerprinting attack (Section 4.1, attack 1).
//!
//! "An adversary Alice could use relevance score distribution statistics to
//! extract specific features like score ranges, or score distribution
//! patterns for each particular term.  Alice could compare extracted features
//! with the relevance score distribution in the posting lists to find
//! correlations."
//!
//! The attack implemented here gives Alice generous background knowledge: the
//! true per-term relevance-score distribution of the corpus (e.g. from a
//! public crawl with similar language statistics, Section 3.1).  She then
//! observes the score values attached to posting elements — raw normalized
//! TF in an ordinary index, TRS in Zerber+R — and tries to identify which
//! candidate term produced them by minimising the two-sample
//! Kolmogorov–Smirnov distance.  The Zerber+R claim is that the TRS
//! distributions of different terms are indistinguishable, so her accuracy
//! collapses to random guessing.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use zerber_corpus::{CorpusStats, TermId};
use zerber_r::math::ks_two_sample;

/// Alice's background knowledge: per-term reference score distributions.
#[derive(Debug, Clone, Default)]
pub struct Background {
    profiles: HashMap<TermId, Vec<f64>>,
}

impl Background {
    /// Builds background knowledge from corpus statistics (raw relevance
    /// scores per term).
    pub fn from_stats(stats: &CorpusStats) -> Self {
        let mut profiles = HashMap::with_capacity(stats.num_terms());
        for t in stats.terms() {
            profiles.insert(t.term, t.relevance_scores());
        }
        Background { profiles }
    }

    /// Builds background knowledge from arbitrary per-term observations
    /// (e.g. TRS values, for a strongest-case adversary who even knows the
    /// transformed distributions).
    pub fn from_observations(observations: &HashMap<TermId, Vec<f64>>) -> Self {
        Background {
            profiles: observations.clone(),
        }
    }

    /// Number of profiled terms.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Returns `true` if no terms are profiled.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The reference distribution of a term.
    pub fn profile(&self, term: TermId) -> Option<&[f64]> {
        self.profiles.get(&term).map(Vec::as_slice)
    }

    /// Identifies which of `candidates` most likely produced `observed`
    /// (smallest KS distance).  Returns `None` when no candidate has a
    /// profile.
    pub fn identify(&self, observed: &[f64], candidates: &[TermId]) -> Option<TermId> {
        let mut best: Option<(TermId, f64)> = None;
        for &c in candidates {
            let Some(profile) = self.profiles.get(&c) else {
                continue;
            };
            let d = ks_two_sample(observed, profile);
            let better = match best {
                None => true,
                Some((_, bd)) => d < bd,
            };
            if better {
                best = Some((c, d));
            }
        }
        best.map(|(t, _)| t)
    }
}

/// Outcome of an identification experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FingerprintReport {
    /// Number of identification trials.
    pub trials: usize,
    /// Number of trials where the adversary named the correct term.
    pub correct: usize,
    /// Number of candidates per trial (the prior success probability is
    /// `1 / candidates`).
    pub candidates_per_trial: usize,
}

impl FingerprintReport {
    /// Identification accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.correct as f64 / self.trials as f64
    }

    /// The accuracy of blind guessing.
    pub fn chance_level(&self) -> f64 {
        if self.candidates_per_trial == 0 {
            return 0.0;
        }
        1.0 / self.candidates_per_trial as f64
    }

    /// How much better than guessing the adversary did (1.0 = no advantage).
    pub fn advantage(&self) -> f64 {
        let chance = self.chance_level();
        if chance == 0.0 {
            return 0.0;
        }
        self.accuracy() / chance
    }
}

/// Runs the identification experiment.
///
/// For every term in `observations` (the values Alice can read off the
/// index — raw scores or TRS), the adversary is shown the observed values and
/// a candidate set consisting of the true term plus `num_distractors`
/// randomly drawn other terms; she answers with [`Background::identify`].
pub fn identification_experiment(
    background: &Background,
    observations: &HashMap<TermId, Vec<f64>>,
    num_distractors: usize,
    min_observations: usize,
    seed: u64,
) -> FingerprintReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let all_terms: Vec<TermId> = observations.keys().copied().collect();
    let mut ordered: Vec<TermId> = all_terms.clone();
    ordered.sort();
    let mut trials = 0usize;
    let mut correct = 0usize;
    for &term in &ordered {
        let observed = &observations[&term];
        if observed.len() < min_observations {
            continue;
        }
        let mut candidates = vec![term];
        let mut pool: Vec<TermId> = all_terms.iter().copied().filter(|&t| t != term).collect();
        pool.shuffle(&mut rng);
        candidates.extend(pool.into_iter().take(num_distractors));
        candidates.shuffle(&mut rng);
        if let Some(guess) = background.identify(observed, &candidates) {
            trials += 1;
            if guess == term {
                correct += 1;
            }
        }
    }
    FingerprintReport {
        trials,
        correct,
        candidates_per_trial: num_distractors + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerber_corpus::{sample_split, SplitConfig};
    use zerber_corpus::{CorpusGenerator, CustomProfile, DatasetProfile, SynthConfig};
    use zerber_r::{RstfConfig, RstfModel};

    fn stats() -> (zerber_corpus::Corpus, CorpusStats) {
        let config = SynthConfig {
            profile: DatasetProfile::Custom(CustomProfile {
                num_docs: 500,
                num_groups: 2,
                vocab_size: 400,
                general_vocab_fraction: 1.0,
                topic_mix: 0.0,
                zipf_exponent: 0.9,
                doc_length_median: 100.0,
                doc_length_sigma: 0.8,
                min_doc_length: 30,
                max_doc_length: 600,
            }),
            scale: 1.0,
            seed: 2_024,
        };
        let corpus = CorpusGenerator::new(config).generate().unwrap();
        let stats = CorpusStats::compute(&corpus);
        (corpus, stats)
    }

    fn raw_observations(stats: &CorpusStats, min_df: u32) -> HashMap<TermId, Vec<f64>> {
        stats
            .terms()
            .filter(|t| t.doc_freq >= min_df)
            .map(|t| (t.term, t.relevance_scores()))
            .collect()
    }

    #[test]
    fn raw_scores_let_the_adversary_identify_terms() {
        let (_, stats) = stats();
        let background = Background::from_stats(&stats);
        let observations = raw_observations(&stats, 20);
        assert!(observations.len() >= 20);
        let report = identification_experiment(&background, &observations, 4, 20, 1);
        // Observing the exact raw distribution the background was built from
        // makes identification near-perfect.
        assert!(report.trials > 10);
        assert!(
            report.accuracy() > 0.9,
            "raw-score identification accuracy {}",
            report.accuracy()
        );
        assert!(report.advantage() > 3.0);
    }

    #[test]
    fn trs_scores_reduce_the_adversary_to_chance_level() {
        let (corpus, stats) = stats();
        let split = sample_split(&corpus, SplitConfig::default()).unwrap();
        let model = RstfModel::train(&corpus, &split, &RstfConfig::default()).unwrap();
        // Alice's background: the *raw* per-term distributions (what she can
        // learn from public corpora).  Observations: the TRS values actually
        // stored on the server.
        let background = Background::from_stats(&stats);
        let mut trs_observations: HashMap<TermId, Vec<f64>> = HashMap::new();
        for t in stats.terms() {
            if t.doc_freq < 20 {
                continue;
            }
            let values: Vec<f64> = t
                .postings
                .iter()
                .map(|&(doc, _, rel)| model.transform(t.term, doc, rel))
                .collect();
            trs_observations.insert(t.term, values);
        }
        let report = identification_experiment(&background, &trs_observations, 4, 20, 2);
        assert!(report.trials > 10);
        // With 5 candidates chance is 0.2; the TRS should leave the adversary
        // within a small factor of chance (paper Section 6.2).
        assert!(
            report.accuracy() < 0.45,
            "TRS identification accuracy {} should be near chance 0.2",
            report.accuracy()
        );
    }

    #[test]
    fn even_trs_background_gives_little_advantage() {
        // Strongest adversary: she somehow knows every term's true TRS
        // distribution.  Because all of them are ~uniform, matching still
        // fails.
        let (corpus, stats) = stats();
        let split = sample_split(&corpus, SplitConfig::default()).unwrap();
        let model = RstfModel::train(&corpus, &split, &RstfConfig::default()).unwrap();
        let mut trs_observations: HashMap<TermId, Vec<f64>> = HashMap::new();
        for t in stats.terms() {
            if t.doc_freq < 30 {
                continue;
            }
            let values: Vec<f64> = t
                .postings
                .iter()
                .map(|&(doc, _, rel)| model.transform(t.term, doc, rel))
                .collect();
            trs_observations.insert(t.term, values);
        }
        // Split each term's TRS values into two disjoint halves: the
        // adversary's background knowledge comes from one half, her
        // observations from the other (she cannot observe the very elements
        // she profiled).
        let background_half: HashMap<TermId, Vec<f64>> = trs_observations
            .iter()
            .map(|(&t, v)| (t, v.iter().copied().skip(1).step_by(2).collect()))
            .collect();
        let observed_half: HashMap<TermId, Vec<f64>> = trs_observations
            .iter()
            .map(|(&t, v)| (t, v.iter().copied().step_by(2).collect()))
            .collect();
        let background = Background::from_observations(&background_half);
        let report = identification_experiment(&background, &observed_half, 4, 15, 3);
        assert!(report.trials > 5);
        assert!(
            report.accuracy() < 0.6,
            "TRS-vs-TRS matching on disjoint samples should stay near chance, got {}",
            report.accuracy()
        );
    }

    #[test]
    fn background_accessors_and_empty_cases() {
        let (_, stats) = stats();
        let background = Background::from_stats(&stats);
        assert!(!background.is_empty());
        assert_eq!(background.len(), stats.num_terms());
        let term = stats.terms_by_doc_freq()[0];
        assert!(background.profile(term).is_some());
        assert!(background.profile(TermId(10_000_000)).is_none());
        assert!(background.identify(&[0.5], &[TermId(10_000_000)]).is_none());
        let empty = identification_experiment(&background, &HashMap::new(), 3, 1, 0);
        assert_eq!(empty.trials, 0);
        assert_eq!(empty.accuracy(), 0.0);
        assert_eq!(empty.chance_level(), 0.25);
    }
}
