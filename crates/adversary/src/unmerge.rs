//! Element-attribution ("unmerge") attack on an ordered merged posting list.
//!
//! Section 3.3 / Figure 3: if posting elements inside a merged list were
//! sorted by their *raw* term-frequency-based scores, an adversary who knows
//! the merged terms and their typical score distributions could attribute
//! individual elements to terms ("frequent terms are more probably located in
//! the head of the merged posting list") and thereby undo the merging —
//! breaking the r-confidentiality guarantee.  Zerber+R's claim is that after
//! the RSTF the visible scores carry no term-specific signal, so the best the
//! adversary can do is guess along the prior term probabilities.
//!
//! The attack: for every element the adversary sees its visible score
//! (raw relevance in the ablation, TRS in Zerber+R) and computes the MAP
//! estimate over the merged terms using histogram densities learned from her
//! background knowledge, weighted by the terms' prior probabilities.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use zerber_corpus::TermId;

/// Histogram density estimator over `[lo, hi]` with Laplace smoothing.
#[derive(Debug, Clone)]
pub struct HistogramDensity {
    lo: f64,
    hi: f64,
    counts: Vec<f64>,
    total: f64,
}

impl HistogramDensity {
    /// Builds a histogram with `bins` buckets from samples.
    pub fn fit(samples: &[f64], bins: usize, lo: f64, hi: f64) -> Self {
        let bins = bins.max(1);
        let mut counts = vec![1.0; bins]; // Laplace smoothing
        let width = (hi - lo).max(f64::MIN_POSITIVE);
        for &s in samples {
            let idx = (((s - lo) / width) * bins as f64).floor();
            let idx = (idx.max(0.0) as usize).min(bins - 1);
            counts[idx] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        HistogramDensity {
            lo,
            hi,
            counts,
            total,
        }
    }

    /// Probability density at `x` (0 outside the support would be unfair to
    /// the adversary; values are clamped into range instead).
    pub fn pdf(&self, x: f64) -> f64 {
        let bins = self.counts.len();
        let width = (self.hi - self.lo).max(f64::MIN_POSITIVE);
        let idx = (((x - self.lo) / width) * bins as f64).floor();
        let idx = (idx.max(0.0) as usize).min(bins - 1);
        (self.counts[idx] / self.total) * bins as f64 / width
    }
}

/// One observed element of the merged list, labelled with the ground truth
/// for evaluation (the adversary never sees the label).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObservedElement {
    /// True term of the element (evaluation only).
    pub truth: TermId,
    /// Score visible to the server (raw relevance or TRS).
    pub visible_score: f64,
}

/// Result of the attribution attack on one merged list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnmergeReport {
    /// Number of elements attributed.
    pub elements: usize,
    /// Correct attributions by the MAP adversary.
    pub correct: usize,
    /// Correct attributions of the prior-only adversary (always guesses the
    /// term with the largest prior).
    pub prior_correct: usize,
}

impl UnmergeReport {
    /// Accuracy of the score-informed adversary.
    pub fn accuracy(&self) -> f64 {
        if self.elements == 0 {
            return 0.0;
        }
        self.correct as f64 / self.elements as f64
    }

    /// Accuracy achievable from priors alone (the r-confidentiality baseline).
    pub fn prior_accuracy(&self) -> f64 {
        if self.elements == 0 {
            return 0.0;
        }
        self.prior_correct as f64 / self.elements as f64
    }

    /// Empirical probability amplification: how much the visible scores
    /// improve the adversary beyond her prior (1.0 = no leakage).
    pub fn amplification(&self) -> f64 {
        let prior = self.prior_accuracy();
        if prior == 0.0 {
            return if self.accuracy() > 0.0 {
                f64::INFINITY
            } else {
                1.0
            };
        }
        self.accuracy() / prior
    }
}

/// Runs the attribution attack.
///
/// * `observed` — the merged list's elements with their visible scores,
/// * `background` — per-term reference score distributions known to the
///   adversary (in the same score space as `visible_score`),
/// * `priors` — per-term prior probabilities `p_t` (normalized document
///   frequencies).
pub fn unmerge_attack(
    observed: &[ObservedElement],
    background: &HashMap<TermId, Vec<f64>>,
    priors: &HashMap<TermId, f64>,
) -> UnmergeReport {
    if observed.is_empty() || priors.is_empty() {
        return UnmergeReport {
            elements: 0,
            correct: 0,
            prior_correct: 0,
        };
    }
    // Fit a density per candidate term over the visible-score range.
    let lo = 0.0;
    let hi = observed
        .iter()
        .map(|e| e.visible_score)
        .fold(1.0f64, f64::max)
        .max(1e-9);
    let densities: HashMap<TermId, HistogramDensity> = priors
        .keys()
        .map(|&t| {
            let samples = background.get(&t).map(Vec::as_slice).unwrap_or(&[]);
            (t, HistogramDensity::fit(samples, 32, lo, hi))
        })
        .collect();
    // The prior-only adversary always answers the largest-prior term.
    let prior_guess = priors
        .iter()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(&t, _)| t)
        .expect("non-empty priors");

    let mut correct = 0usize;
    let mut prior_correct = 0usize;
    for e in observed {
        let mut best: Option<(TermId, f64)> = None;
        for (&t, &p) in priors {
            let like = densities[&t].pdf(e.visible_score);
            let posterior = p * like;
            let better = match best {
                None => true,
                Some((_, b)) => posterior > b,
            };
            if better {
                best = Some((t, posterior));
            }
        }
        if let Some((guess, _)) = best {
            if guess == e.truth {
                correct += 1;
            }
        }
        if prior_guess == e.truth {
            prior_correct += 1;
        }
    }
    UnmergeReport {
        elements: observed.len(),
        correct,
        prior_correct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds a two-term scenario: a "frequent" term whose scores concentrate
    /// at low values and a "rare" term with clearly higher scores — the
    /// "and" / "imclone" example of Figure 3.
    type TwoTermScenario = (
        Vec<ObservedElement>,
        HashMap<TermId, Vec<f64>>,
        HashMap<TermId, f64>,
    );

    fn two_term_scenario(transform_to_uniform: bool, seed: u64) -> TwoTermScenario {
        let mut rng = StdRng::seed_from_u64(seed);
        let frequent = TermId(0);
        let rare = TermId(1);
        let mut observed = Vec::new();
        let mut background: HashMap<TermId, Vec<f64>> = HashMap::new();
        let draw_frequent = |rng: &mut StdRng| rng.gen::<f64>() * 0.2 + 0.01;
        let draw_rare = |rng: &mut StdRng| rng.gen::<f64>() * 0.3 + 0.55;
        for _ in 0..900 {
            let raw = draw_frequent(&mut rng);
            let visible = if transform_to_uniform { rng.gen() } else { raw };
            observed.push(ObservedElement {
                truth: frequent,
                visible_score: visible,
            });
            background
                .entry(frequent)
                .or_default()
                .push(if transform_to_uniform {
                    rng.gen()
                } else {
                    draw_frequent(&mut rng)
                });
        }
        for _ in 0..100 {
            let raw = draw_rare(&mut rng);
            let visible = if transform_to_uniform { rng.gen() } else { raw };
            observed.push(ObservedElement {
                truth: rare,
                visible_score: visible,
            });
            background
                .entry(rare)
                .or_default()
                .push(if transform_to_uniform {
                    rng.gen()
                } else {
                    draw_rare(&mut rng)
                });
        }
        let priors: HashMap<TermId, f64> = [(frequent, 0.9), (rare, 0.1)].into();
        (observed, background, priors)
    }

    #[test]
    fn raw_scores_allow_unmerging() {
        let (observed, background, priors) = two_term_scenario(false, 1);
        let report = unmerge_attack(&observed, &background, &priors);
        // The score ranges barely overlap: the adversary attributes nearly
        // every element correctly, far above the 90% prior baseline.
        assert!(report.accuracy() > 0.97, "accuracy {}", report.accuracy());
        assert!(report.amplification() > 1.05);
        assert_eq!(report.elements, 1_000);
    }

    #[test]
    fn uniformized_scores_defeat_the_attack() {
        let (observed, background, priors) = two_term_scenario(true, 2);
        let report = unmerge_attack(&observed, &background, &priors);
        // With uniform visible scores the best strategy collapses to the
        // prior guess; no amplification beyond noise.
        assert!(
            report.amplification() < 1.05,
            "amplification {}",
            report.amplification()
        );
        assert!(report.accuracy() <= report.prior_accuracy() + 0.05);
    }

    #[test]
    fn histogram_density_integrates_to_one_and_reflects_mass() {
        let samples: Vec<f64> = (0..1000).map(|i| f64::from(i % 10) / 20.0).collect();
        let h = HistogramDensity::fit(&samples, 20, 0.0, 1.0);
        // Numeric integral over [0,1].
        let n = 1000;
        let integral: f64 = (0..n).map(|i| h.pdf(i as f64 / n as f64) / n as f64).sum();
        assert!((integral - 1.0).abs() < 0.02, "integral {integral}");
        assert!(h.pdf(0.2) > h.pdf(0.9));
    }

    #[test]
    fn empty_inputs_produce_neutral_reports() {
        let report = unmerge_attack(&[], &HashMap::new(), &HashMap::new());
        assert_eq!(report.elements, 0);
        assert_eq!(report.accuracy(), 0.0);
        assert_eq!(report.amplification(), 1.0);
    }

    #[test]
    fn missing_background_still_lets_priors_work() {
        let observed = vec![
            ObservedElement {
                truth: TermId(0),
                visible_score: 0.4,
            };
            50
        ];
        let priors: HashMap<TermId, f64> = [(TermId(0), 0.8), (TermId(1), 0.2)].into();
        let report = unmerge_attack(&observed, &HashMap::new(), &priors);
        // With flat (smoothed-only) densities both adversaries answer the
        // majority term.
        assert_eq!(report.correct, 50);
        assert_eq!(report.prior_correct, 50);
        assert!((report.amplification() - 1.0).abs() < 1e-12);
    }
}
