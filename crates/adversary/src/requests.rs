//! Query-observation attack: counting follow-up requests (Section 4.1,
//! attack 2).
//!
//! "In case of a merged ordered posting list, the number of requests required
//! for obtaining top-k elements for a rare or a frequent term may differ ...
//! Alice could guess the term by observing the number of follow-up requests."
//!
//! Zerber+R's counter-measure is the BFM merge: terms sharing a list have
//! similar document frequencies, so the request counts observed by the server
//! are (nearly) the same whichever of the merged terms was queried.  This
//! module measures how well an adversary can tell the rarest from the most
//! frequent member of each merged list purely from request counts, for any
//! merge scheme — the ablation of BFM against the frequency-spanning
//! `MixedMerge` is one of the security experiments.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use zerber_corpus::{CorpusStats, GroupId};
use zerber_crypto::GroupKeys;
use zerber_r::{retrieve_topk, OrderedIndex, RetrievalConfig};

use crate::AdversaryError;

/// Result of the request-counting experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestCountingReport {
    /// Number of merged lists with at least two terms that were probed.
    pub lists_tested: usize,
    /// Lists where the rare term needed strictly more requests than the
    /// frequent one (i.e. the adversary's guess succeeds).
    pub distinguishable_lists: usize,
    /// Mean absolute difference in request counts between the rarest and the
    /// most frequent merged term.
    pub mean_request_spread: f64,
    /// Mean request count over all probed terms (context for the spread).
    pub mean_requests: f64,
}

impl RequestCountingReport {
    /// Probability that observing the request count identifies the rare term.
    /// 0.5 would be expected by chance if ties are broken by a coin flip; the
    /// value reported here counts ties as indistinguishable (success rate of
    /// the deterministic "more requests ⇒ rare" rule).
    pub fn success_rate(&self) -> f64 {
        if self.lists_tested == 0 {
            return 0.0;
        }
        self.distinguishable_lists as f64 / self.lists_tested as f64
    }
}

/// Probes up to `max_lists` merged lists: for each, queries the most frequent
/// and the least frequent member term with `top-k`, `b = k`, and records
/// whether their request counts differ.
pub fn request_counting_attack(
    index: &OrderedIndex,
    stats: &CorpusStats,
    memberships: &HashMap<GroupId, GroupKeys>,
    k: usize,
    max_lists: usize,
) -> Result<RequestCountingReport, AdversaryError> {
    if k == 0 {
        return Err(AdversaryError::InvalidParameter(
            "k must be greater than 0".into(),
        ));
    }
    let config = RetrievalConfig::for_k(k);
    let mut lists_tested = 0usize;
    let mut distinguishable = 0usize;
    let mut spread_sum = 0.0;
    let mut request_sum = 0.0;
    let mut request_count = 0usize;
    for (_, terms) in index.plan().iter() {
        if lists_tested >= max_lists {
            break;
        }
        if terms.len() < 2 {
            continue;
        }
        // Identify the most frequent and the rarest merged terms.
        let mut best = None;
        let mut worst = None;
        for &t in terms {
            let df = stats.doc_freq(t).unwrap_or(0);
            if best.is_none_or(|(_, b)| df > b) {
                best = Some((t, df));
            }
            if worst.is_none_or(|(_, w)| df < w) {
                worst = Some((t, df));
            }
        }
        let (frequent, df_f) = best.expect("list has terms");
        let (rare, df_r) = worst.expect("list has terms");
        if frequent == rare || df_f == df_r {
            continue;
        }
        let frequent_outcome = retrieve_topk(index, frequent, memberships, &config)?;
        let rare_outcome = retrieve_topk(index, rare, memberships, &config)?;
        lists_tested += 1;
        let fr = frequent_outcome.requests as f64;
        let rr = rare_outcome.requests as f64;
        spread_sum += (rr - fr).abs();
        request_sum += fr + rr;
        request_count += 2;
        if rare_outcome.requests > frequent_outcome.requests {
            distinguishable += 1;
        }
    }
    Ok(RequestCountingReport {
        lists_tested,
        distinguishable_lists: distinguishable,
        mean_request_spread: if lists_tested == 0 {
            0.0
        } else {
            spread_sum / lists_tested as f64
        },
        mean_requests: if request_count == 0 {
            0.0
        } else {
            request_sum / request_count as f64
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerber_base::{BfmMerge, ConfidentialityParam, MergeScheme, MixedMerge};
    use zerber_corpus::{
        sample_split, CorpusGenerator, CustomProfile, DatasetProfile, SplitConfig, SynthConfig,
    };
    use zerber_crypto::MasterKey;
    use zerber_r::{RstfConfig, RstfModel};

    struct Setup {
        stats: CorpusStats,
        bfm_index: OrderedIndex,
        mixed_index: OrderedIndex,
        memberships: HashMap<GroupId, GroupKeys>,
    }

    fn setup() -> Setup {
        let config = SynthConfig {
            profile: DatasetProfile::Custom(CustomProfile {
                num_docs: 400,
                num_groups: 2,
                vocab_size: 900,
                general_vocab_fraction: 1.0,
                topic_mix: 0.0,
                zipf_exponent: 1.1,
                doc_length_median: 70.0,
                doc_length_sigma: 0.7,
                min_doc_length: 20,
                max_doc_length: 400,
            }),
            scale: 1.0,
            seed: 31,
        };
        let corpus = CorpusGenerator::new(config).generate().unwrap();
        let stats = CorpusStats::compute(&corpus);
        let split = sample_split(&corpus, SplitConfig::default()).unwrap();
        let model = RstfModel::train(&corpus, &split, &RstfConfig::default()).unwrap();
        let r = ConfidentialityParam::new(3.0).unwrap();
        let master = MasterKey::new([3u8; 32]);
        let bfm_plan = BfmMerge.plan(&stats, r).unwrap();
        let mixed_plan = MixedMerge.plan(&stats, r).unwrap();
        let bfm_index = OrderedIndex::build(&corpus, bfm_plan, &model, &master, 1).unwrap();
        let mixed_index = OrderedIndex::build(&corpus, mixed_plan, &model, &master, 2).unwrap();
        let memberships: HashMap<GroupId, GroupKeys> = (0..corpus.num_groups() as u32)
            .map(|g| (GroupId(g), master.group_keys(g)))
            .collect();
        Setup {
            stats,
            bfm_index,
            mixed_index,
            memberships,
        }
    }

    #[test]
    fn bfm_keeps_request_counts_similar_mixed_does_not() {
        let s = setup();
        let bfm = request_counting_attack(&s.bfm_index, &s.stats, &s.memberships, 10, 40).unwrap();
        let mixed =
            request_counting_attack(&s.mixed_index, &s.stats, &s.memberships, 10, 40).unwrap();
        assert!(bfm.lists_tested > 5);
        assert!(mixed.lists_tested > 5);
        // The frequency-spanning merge leaks more through request counts than
        // BFM, both in how often the rare term is identifiable and in the
        // average spread of request counts.
        assert!(
            mixed.mean_request_spread >= bfm.mean_request_spread,
            "mixed spread {} vs bfm spread {}",
            mixed.mean_request_spread,
            bfm.mean_request_spread
        );
        assert!(
            mixed.success_rate() >= bfm.success_rate(),
            "mixed success {} vs bfm success {}",
            mixed.success_rate(),
            bfm.success_rate()
        );
    }

    #[test]
    fn report_fields_are_consistent() {
        let s = setup();
        let report =
            request_counting_attack(&s.bfm_index, &s.stats, &s.memberships, 5, 20).unwrap();
        assert!(report.distinguishable_lists <= report.lists_tested);
        assert!(report.mean_requests >= 1.0);
        assert!(report.mean_request_spread >= 0.0);
        assert!((0.0..=1.0).contains(&report.success_rate()));
    }

    #[test]
    fn zero_k_is_rejected_and_zero_lists_is_neutral() {
        let s = setup();
        assert!(request_counting_attack(&s.bfm_index, &s.stats, &s.memberships, 0, 10).is_err());
        let none = request_counting_attack(&s.bfm_index, &s.stats, &s.memberships, 5, 0).unwrap();
        assert_eq!(none.lists_tested, 0);
        assert_eq!(none.success_rate(), 0.0);
    }
}
