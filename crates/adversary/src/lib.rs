//! Adversary models for the security evaluation (Sections 4.1 and 6.2).
//!
//! The threat model assumes the adversary ("Alice") has compromised the index
//! server: she sees merged posting lists, the plaintext scores attached to
//! posting elements (raw relevance in the ablations, TRS in Zerber+R), the
//! group tags, and the stream of queries and responses.  Three attacks are
//! implemented:
//!
//! * [`fingerprint`] — match observed score distributions against per-term
//!   background knowledge to identify which term a set of elements belongs to
//!   (attack 1 of Section 4.1),
//! * [`unmerge`] — attribute individual elements of a merged list to their
//!   terms from their visible scores, attempting to undo the merging
//!   (Section 3.3 / Figure 3),
//! * [`requests`] — distinguish rare from frequent merged terms by counting
//!   follow-up requests (attack 2 of Section 4.1).
//!
//! Each attack reports the adversary's accuracy together with the prior
//! (chance-level) baseline, so experiments can quantify the *probability
//! amplification* that r-confidentiality is supposed to bound.

pub mod fingerprint;
pub mod requests;
pub mod unmerge;

use std::fmt;

pub use fingerprint::{identification_experiment, Background, FingerprintReport};
pub use requests::{request_counting_attack, RequestCountingReport};
pub use unmerge::{unmerge_attack, HistogramDensity, ObservedElement, UnmergeReport};

/// Errors produced by the attack harnesses.
#[derive(Debug, Clone, PartialEq)]
pub enum AdversaryError {
    /// An invalid parameter was supplied.
    InvalidParameter(String),
    /// An error bubbled up from the Zerber+R core.
    Core(String),
}

impl fmt::Display for AdversaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdversaryError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            AdversaryError::Core(msg) => write!(f, "core error: {msg}"),
        }
    }
}

impl std::error::Error for AdversaryError {}

impl From<zerber_r::ZerberRError> for AdversaryError {
    fn from(e: zerber_r::ZerberRError) -> Self {
        AdversaryError::Core(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_conversion() {
        assert!(AdversaryError::InvalidParameter("k".into())
            .to_string()
            .contains('k'));
        let e: AdversaryError = zerber_r::ZerberRError::UnknownList(3).into();
        assert!(matches!(e, AdversaryError::Core(_)));
    }
}
