//! Error type for the ordinary inverted index substrate.

use std::fmt;

/// Errors produced by the inverted index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// The queried term does not occur in the index.
    TermNotIndexed(String),
    /// A corpus-level error bubbled up during index construction.
    Corpus(String),
    /// A compressed posting list could not be decoded.
    CorruptPostings(String),
    /// `k = 0` or another invalid query parameter was supplied.
    InvalidQuery(String),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::TermNotIndexed(t) => write!(f, "term {t:?} is not indexed"),
            IndexError::Corpus(msg) => write!(f, "corpus error: {msg}"),
            IndexError::CorruptPostings(msg) => write!(f, "corrupt posting list: {msg}"),
            IndexError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
        }
    }
}

impl std::error::Error for IndexError {}

impl From<zerber_corpus::CorpusError> for IndexError {
    fn from(e: zerber_corpus::CorpusError) -> Self {
        IndexError::Corpus(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_the_term_or_message() {
        assert!(IndexError::TermNotIndexed("imclone".into())
            .to_string()
            .contains("imclone"));
        assert!(IndexError::InvalidQuery("k must be > 0".into())
            .to_string()
            .contains("k must be > 0"));
        assert!(IndexError::CorruptPostings("truncated varint".into())
            .to_string()
            .contains("truncated"));
    }

    #[test]
    fn corpus_errors_convert() {
        let e: IndexError = zerber_corpus::CorpusError::UnknownTerm(5).into();
        assert!(matches!(e, IndexError::Corpus(_)));
    }
}
