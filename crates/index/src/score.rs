//! Relevance scoring models.
//!
//! Section 3.2 of the paper distinguishes two scoring settings:
//!
//! * the full vector-space `TF×IDF` score (Equation 3), which needs
//!   collection-wide statistics (document frequencies) and therefore leaks
//!   information about inaccessible documents, and
//! * the per-document normalized term frequency `TF/|d|` (Equation 4), which
//!   Zerber+R uses because a single-term query can be ranked exactly from
//!   information local to one document.
//!
//! Both are implemented; the ordinary-index baseline can use either, the
//! confidential index always uses Equation 4.

use zerber_corpus::{CorpusStats, DocId, TermId};

use crate::error::IndexError;

/// A scoring model maps a `(term, document)` observation to a relevance score.
pub trait ScoringModel {
    /// Score of a document for a single query term given the term frequency
    /// `tf` in the document and the document length `doc_len`.
    fn score(&self, term: TermId, doc: DocId, tf: u32, doc_len: u32) -> f64;

    /// Human-readable name, used in experiment output.
    fn name(&self) -> &'static str;
}

/// Equation 4: `rscore(q, d) = TF_q / |d|`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalizedTf;

impl ScoringModel for NormalizedTf {
    fn score(&self, _term: TermId, _doc: DocId, tf: u32, doc_len: u32) -> f64 {
        if doc_len == 0 {
            0.0
        } else {
            f64::from(tf) / f64::from(doc_len)
        }
    }

    fn name(&self) -> &'static str {
        "normalized-tf"
    }
}

/// Equation 3: `rscore(Q, d) = Σ_q IDF_q * TF_q / |d|` with
/// `IDF_q = ln(|D| / n_d(q))`.
///
/// The IDF table is precomputed from corpus statistics; this is the scoring
/// model an *ordinary* (non-confidential) search engine would use and is the
/// baseline whose result quality multi-term Zerber+R queries are compared
/// against (Section 3.2).
#[derive(Debug, Clone)]
pub struct TfIdf {
    idf: Vec<f64>,
}

impl TfIdf {
    /// Builds the IDF table from corpus statistics.
    pub fn from_stats(stats: &CorpusStats) -> Self {
        let mut idf = vec![0.0; stats.num_terms()];
        for t in stats.terms() {
            let v = stats.idf(t.term).unwrap_or(0.0);
            if t.term.index() < idf.len() {
                idf[t.term.index()] = v;
            }
        }
        TfIdf { idf }
    }

    /// The IDF of a term (0 for unknown terms).
    pub fn idf(&self, term: TermId) -> f64 {
        self.idf.get(term.index()).copied().unwrap_or(0.0)
    }
}

impl ScoringModel for TfIdf {
    fn score(&self, term: TermId, _doc: DocId, tf: u32, doc_len: u32) -> f64 {
        if doc_len == 0 {
            return 0.0;
        }
        self.idf(term) * f64::from(tf) / f64::from(doc_len)
    }

    fn name(&self) -> &'static str {
        "tf-idf"
    }
}

/// Scores an entire multi-term query against a document by summing the
/// per-term scores (the outer sum of Equation 3).
pub fn score_query<M: ScoringModel>(
    model: &M,
    terms: &[(TermId, u32)],
    doc: DocId,
    doc_len: u32,
) -> Result<f64, IndexError> {
    if terms.is_empty() {
        return Err(IndexError::InvalidQuery("empty query".into()));
    }
    Ok(terms
        .iter()
        .map(|&(t, tf)| model.score(t, doc, tf, doc_len))
        .sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerber_corpus::{CorpusBuilder, Document, GroupId};

    fn stats() -> (zerber_corpus::Corpus, CorpusStats) {
        let mut b = CorpusBuilder::new();
        b.add_document(Document::new(
            "1",
            GroupId(0),
            "and imclone and and compound",
        ))
        .unwrap();
        b.add_document(Document::new("2", GroupId(0), "and process"))
            .unwrap();
        b.add_document(Document::new("3", GroupId(0), "compound process"))
            .unwrap();
        let c = b.build();
        let s = CorpusStats::compute(&c);
        (c, s)
    }

    #[test]
    fn normalized_tf_matches_equation_4() {
        let m = NormalizedTf;
        assert!((m.score(TermId(0), DocId(0), 3, 5) - 0.6).abs() < 1e-12);
        assert_eq!(m.score(TermId(0), DocId(0), 3, 0), 0.0);
        assert_eq!(m.name(), "normalized-tf");
    }

    #[test]
    fn tfidf_weights_rare_terms_higher() {
        let (c, s) = stats();
        let m = TfIdf::from_stats(&s);
        let and = c.dictionary().get("and").unwrap();
        let imclone = c.dictionary().get("imclone").unwrap();
        // Same tf and doc length: the rare term must score higher.
        assert!(m.score(imclone, DocId(0), 1, 5) > m.score(and, DocId(0), 1, 5));
        assert_eq!(m.name(), "tf-idf");
    }

    #[test]
    fn tfidf_of_unknown_term_is_zero() {
        let (_, s) = stats();
        let m = TfIdf::from_stats(&s);
        assert_eq!(m.idf(TermId(10_000)), 0.0);
        assert_eq!(m.score(TermId(10_000), DocId(0), 3, 10), 0.0);
    }

    #[test]
    fn query_score_sums_term_contributions() {
        let (c, s) = stats();
        let m = TfIdf::from_stats(&s);
        let and = c.dictionary().get("and").unwrap();
        let compound = c.dictionary().get("compound").unwrap();
        let q = vec![(and, 3u32), (compound, 1u32)];
        let total = score_query(&m, &q, DocId(0), 5).unwrap();
        let expected = m.score(and, DocId(0), 3, 5) + m.score(compound, DocId(0), 1, 5);
        assert!((total - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_query_is_rejected() {
        let m = NormalizedTf;
        assert!(score_query(&m, &[], DocId(0), 5).is_err());
    }
}
