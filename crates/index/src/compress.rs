//! Posting-list compression: impact-ordered delta + variable-byte (varint)
//! encoding.
//!
//! The evaluation of Section 6.6 reasons about the size of query responses
//! and index storage (Section 6.3).  To report realistic byte counts for the
//! ordinary-index baseline, posting lists are serialized in their canonical
//! descending-score ("impact") order — the order top-k queries consume — with
//! the non-increasing quantized scores delta-encoded, document ids stored as
//! plain varints, and all integers in LEB128-style variable-byte encoding.
//! Scores are quantized to a fixed-point `u32` before encoding.  Keeping the
//! wire order identical to the list order makes the codec order-exact: a
//! decode reproduces the posting sequence element for element even when the
//! quantization collapses near-equal scores.

use zerber_corpus::DocId;

use crate::error::IndexError;
use crate::posting::{Posting, PostingList};

/// Score quantization factor: scores in `[0, 1]` keep ~6 significant decimal
/// digits, which is far below the ranking granularity the experiments need.
const SCORE_SCALE: f64 = 1_000_000.0;

/// Widens a length or count to the varint domain.  Infallible: `usize` is
/// at most 64 bits on every supported target.
fn len_u64(n: usize) -> u64 {
    // analyze::allow(cast): provably widening — usize is at most 64 bits
    n as u64
}

/// Appends `value` in variable-byte (LEB128) encoding.
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        // analyze::allow(cast): masked to the low 7 bits, so the narrowing
        // to u8 cannot truncate
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one varint starting at `pos`, returning `(value, next_pos)`.
pub fn read_varint(buf: &[u8], mut pos: usize) -> Result<(u64, usize), IndexError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(pos)
            .ok_or_else(|| IndexError::CorruptPostings("truncated varint".into()))?;
        pos += 1;
        if shift >= 64 {
            return Err(IndexError::CorruptPostings("varint overflow".into()));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok((value, pos));
        }
        shift += 7;
    }
}

/// Quantizes a score to the fixed-point wire representation.
fn quantize(score: f64) -> u64 {
    // analyze::allow(cast): clamped into [0, u32::MAX] before the cast, and
    // float-to-int casts saturate (NaN maps to 0) — no truncation possible
    (score.clamp(0.0, u32::MAX as f64 / SCORE_SCALE) * SCORE_SCALE).round() as u64
}

/// Maps an `f64` to a `u64` whose unsigned order matches the float total
/// order (for all non-NaN values): positive floats get their sign bit set,
/// negative floats are bitwise inverted.  The mapping is a bijection, so a
/// round trip through [`from_sortable_bits`] is bit-exact — which lets
/// order-sorted float sequences be delta-encoded with non-negative varint
/// deltas *without* any quantization loss (the segment codec of the storage
/// engine needs exact TRS values back).
pub fn sortable_bits(value: f64) -> u64 {
    let bits = value.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Inverse of [`sortable_bits`]: recovers the exact `f64` bit pattern.
pub fn from_sortable_bits(bits: u64) -> f64 {
    f64::from_bits(if bits >> 63 == 1 {
        bits & !(1 << 63)
    } else {
        !bits
    })
}

/// Appends a byte slice with a varint length prefix.
pub fn write_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    write_varint(out, len_u64(bytes.len()));
    out.extend_from_slice(bytes);
}

/// Reads a length-prefixed byte slice written by [`write_bytes`], returning
/// the slice and the position just past it.  Truncations are errors, and the
/// untrusted length can never address past the end of the buffer.
pub fn read_bytes(buf: &[u8], pos: usize) -> Result<(&[u8], usize), IndexError> {
    let (len, start) = read_varint(buf, pos)?;
    let len = usize::try_from(len)
        .map_err(|_| IndexError::CorruptPostings("byte-slice length overflow".into()))?;
    let end = start
        .checked_add(len)
        .ok_or_else(|| IndexError::CorruptPostings("byte-slice length overflow".into()))?;
    let slice = buf
        .get(start..end)
        .ok_or_else(|| IndexError::CorruptPostings("truncated byte slice".into()))?;
    Ok((slice, end))
}

/// Encodes a posting list into a compact byte buffer.
///
/// Layout: varint count, then for each posting in the list's descending-score
/// order: varint doc id, varint tf, varint score delta (previous quantized
/// score minus this one; the first posting stores its quantized score
/// directly).
pub fn encode_posting_list(list: &PostingList) -> Vec<u8> {
    let postings = list.postings();
    let mut out = Vec::with_capacity(postings.len() * 4 + 4);
    write_varint(&mut out, len_u64(postings.len()));
    let mut prev_q: Option<u64> = None;
    for p in postings {
        write_varint(&mut out, u64::from(p.doc.0));
        write_varint(&mut out, u64::from(p.tf));
        let q = quantize(p.score);
        match prev_q {
            None => write_varint(&mut out, q),
            // The list is score-descending, so quantized deltas are >= 0.
            Some(prev) => write_varint(&mut out, prev - q),
        }
        prev_q = Some(q);
    }
    out
}

/// Decodes a posting list produced by [`encode_posting_list`].
pub fn decode_posting_list(buf: &[u8]) -> Result<PostingList, IndexError> {
    let (count, mut pos) = read_varint(buf, 0)?;
    // Don't trust the untrusted count for allocation: every posting takes at
    // least 3 bytes, so a corrupt header can't trigger a huge pre-allocation
    // before validation fails on the truncated body.
    let plausible = usize::try_from(count)
        .unwrap_or(usize::MAX)
        .min(buf.len() / 3 + 1);
    let mut postings = Vec::with_capacity(plausible);
    let mut prev_q: Option<u64> = None;
    for _ in 0..count {
        let (doc, p1) = read_varint(buf, pos)?;
        let (tf, p2) = read_varint(buf, p1)?;
        let (raw, p3) = read_varint(buf, p2)?;
        pos = p3;
        let doc = u32::try_from(doc)
            .map_err(|_| IndexError::CorruptPostings("value out of range".into()))?;
        let tf = u32::try_from(tf)
            .map_err(|_| IndexError::CorruptPostings("value out of range".into()))?;
        let q = match prev_q {
            None => raw,
            Some(prev) => prev.checked_sub(raw).ok_or_else(|| {
                IndexError::CorruptPostings("score delta exceeds previous score".into())
            })?,
        };
        prev_q = Some(q);
        postings.push(Posting::new(DocId(doc), tf, q as f64 / SCORE_SCALE));
    }
    if pos != buf.len() {
        return Err(IndexError::CorruptPostings(format!(
            "{} trailing bytes after postings",
            buf.len() - pos
        )));
    }
    Ok(PostingList::from_sorted_postings(postings))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(items: &[(u32, u32, f64)]) -> PostingList {
        PostingList::from_postings(
            items
                .iter()
                .map(|&(d, tf, s)| Posting::new(DocId(d), tf, s))
                .collect(),
        )
    }

    #[test]
    fn varint_roundtrips_boundary_values() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let (back, pos) = read_varint(&buf, 0).unwrap();
            assert_eq!(back, v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_small_values_use_one_byte() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 100);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_varint(&mut buf, 300);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn truncated_varint_is_an_error() {
        // 0x80 has the continuation bit set but nothing follows.
        assert!(read_varint(&[0x80], 0).is_err());
        assert!(read_varint(&[], 0).is_err());
    }

    #[test]
    fn posting_list_roundtrips() {
        let original = list(&[(3, 2, 0.4), (17, 5, 0.125), (4000, 1, 0.033333)]);
        let buf = encode_posting_list(&original);
        let decoded = decode_posting_list(&buf).unwrap();
        assert_eq!(decoded.len(), 3);
        for (a, b) in original.iter().zip(decoded.iter()) {
            // Same order because quantization keeps 6 decimal digits.
            assert_eq!(a.doc, b.doc);
            assert_eq!(a.tf, b.tf);
            assert!((a.score - b.score).abs() < 2.0 / SCORE_SCALE);
        }
    }

    #[test]
    fn empty_posting_list_roundtrips() {
        let buf = encode_posting_list(&PostingList::new());
        assert_eq!(buf, vec![0]);
        assert!(decode_posting_list(&buf).unwrap().is_empty());
    }

    #[test]
    fn delta_encoding_shrinks_dense_doc_ids() {
        let dense = list(&(0..1000u32).map(|d| (d, 1, 0.5)).collect::<Vec<_>>());
        let sparse = list(
            &(0..1000u32)
                .map(|d| (d * 50_000, 1, 0.5))
                .collect::<Vec<_>>(),
        );
        let dense_bytes = encode_posting_list(&dense).len();
        let sparse_bytes = encode_posting_list(&sparse).len();
        assert!(
            dense_bytes < sparse_bytes,
            "dense {dense_bytes} should be smaller than sparse {sparse_bytes}"
        );
    }

    #[test]
    fn quantization_ties_keep_their_order() {
        // Two scores closer than the quantization step collapse to the same
        // wire value; the impact-ordered codec must reproduce the original
        // sequence regardless.
        let original = list(&[(9, 1, 0.500_000_4), (2, 1, 0.500_000_1), (5, 1, 0.25)]);
        let decoded = decode_posting_list(&encode_posting_list(&original)).unwrap();
        let docs: Vec<u32> = decoded.iter().map(|p| p.doc.0).collect();
        let original_docs: Vec<u32> = original.iter().map(|p| p.doc.0).collect();
        assert_eq!(docs, original_docs);
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut buf = encode_posting_list(&list(&[(1, 1, 0.5)]));
        buf.push(0x00);
        assert!(decode_posting_list(&buf).is_err());
    }

    #[test]
    fn corrupt_count_is_detected() {
        // Claim 5 postings but provide none.
        let buf = vec![5u8];
        assert!(decode_posting_list(&buf).is_err());
    }

    #[test]
    fn sortable_bits_preserve_order_and_roundtrip() {
        let values = [
            -f64::INFINITY,
            -1.5,
            -1e-300,
            -0.0,
            0.0,
            1e-300,
            0.25,
            0.2500000001,
            1.0,
            f64::INFINITY,
        ];
        for w in values.windows(2) {
            assert!(
                sortable_bits(w[0]) <= sortable_bits(w[1]),
                "{} should sort before {}",
                w[0],
                w[1]
            );
        }
        for v in values {
            assert_eq!(from_sortable_bits(sortable_bits(v)).to_bits(), v.to_bits());
        }
        // The mapping is a bijection even on NaN payloads.
        let nan_bits = f64::NAN.to_bits() | 7;
        assert_eq!(
            from_sortable_bits(sortable_bits(f64::from_bits(nan_bits))).to_bits(),
            nan_bits
        );
    }

    #[test]
    fn byte_slices_roundtrip_and_reject_truncation() {
        let mut buf = Vec::new();
        write_bytes(&mut buf, b"hello");
        write_bytes(&mut buf, b"");
        let (first, pos) = read_bytes(&buf, 0).unwrap();
        assert_eq!(first, b"hello");
        let (second, end) = read_bytes(&buf, pos).unwrap();
        assert!(second.is_empty());
        assert_eq!(end, buf.len());
        // A length prefix pointing past the end is an error, not a panic.
        assert!(read_bytes(&buf[..buf.len() - 2], 0).is_err());
        let mut huge = Vec::new();
        write_varint(&mut huge, u64::MAX);
        assert!(read_bytes(&huge, 0).is_err());
    }

    #[test]
    fn huge_claimed_count_errors_without_allocating() {
        // A count varint of ~2^62 in a 10-byte buffer must come back as a
        // codec error, not a capacity-overflow abort from pre-allocation.
        let mut buf = Vec::new();
        write_varint(&mut buf, 1u64 << 62);
        assert!(decode_posting_list(&buf).is_err());
    }
}

#[cfg(test)]
mod fuzz {
    //! Property-based round-trip and corrupt-input tests: the decoder faces
    //! untrusted bytes, so it must reject every truncation and never panic on
    //! arbitrary input.

    use proptest::prelude::*;

    use super::*;

    fn arbitrary_list(items: Vec<(u32, u32, f64)>) -> PostingList {
        let mut seen = std::collections::HashSet::new();
        PostingList::from_postings(
            items
                .into_iter()
                .filter(|(d, _, _)| seen.insert(*d))
                .map(|(d, tf, s)| Posting::new(DocId(d), tf, s))
                .collect(),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn roundtrip_is_order_exact(
            items in proptest::collection::vec((any::<u32>(), 1u32..5_000, 0.0f64..1.0), 0..120)
        ) {
            let list = arbitrary_list(items);
            let decoded = decode_posting_list(&encode_posting_list(&list)).unwrap();
            prop_assert_eq!(decoded.len(), list.len());
            for (a, b) in list.iter().zip(decoded.iter()) {
                // Order-exact: the decoded sequence reproduces the original
                // element for element, even across quantization ties.
                prop_assert_eq!(a.doc, b.doc);
                prop_assert_eq!(a.tf, b.tf);
                prop_assert!((a.score - b.score).abs() < 2.0 / 1_000_000.0);
            }
        }

        #[test]
        fn every_truncation_is_rejected(
            items in proptest::collection::vec((any::<u32>(), 1u32..5_000, 0.0f64..1.0), 1..40),
            cut in any::<usize>()
        ) {
            let buf = encode_posting_list(&arbitrary_list(items));
            let cut = cut % buf.len();
            // A strict prefix (including the empty one: a truncated header)
            // must decode to an error, never to a shorter list or a panic.
            prop_assert!(decode_posting_list(&buf[..cut]).is_err());
        }

        #[test]
        fn arbitrary_bytes_never_panic_the_decoder(
            bytes in proptest::collection::vec(any::<u8>(), 0..512)
        ) {
            if let Ok(list) = decode_posting_list(&bytes) {
                // If arbitrary bytes happen to decode, the claimed element
                // count was backed by real bytes (>= 3 per posting), so a
                // corrupt header can never fabricate a huge list.
                prop_assert!(list.len() <= bytes.len() / 3);
            }
        }

        #[test]
        fn bit_flips_never_panic_the_decoder(
            items in proptest::collection::vec((any::<u32>(), 1u32..5_000, 0.0f64..1.0), 1..40),
            flip in any::<(usize, u8)>()
        ) {
            let mut buf = encode_posting_list(&arbitrary_list(items));
            let pos = flip.0 % buf.len();
            buf[pos] ^= flip.1 | 1;
            // Either a clean error or a differently-valued list; just must
            // not panic or loop.
            let _ = decode_posting_list(&buf);
        }
    }
}
