//! Posting-list compression: delta + variable-byte (varint) encoding.
//!
//! The evaluation of Section 6.6 reasons about the size of query responses
//! and index storage (Section 6.3).  To report realistic byte counts for the
//! ordinary-index baseline, posting lists can be serialized with the standard
//! IR compression pipeline: document ids are delta-encoded (they are stored in
//! ascending id order for compression, independent of the score order used at
//! query time) and all integers use LEB128-style variable-byte encoding.
//! Scores are quantized to a fixed-point `u32` before encoding.

use zerber_corpus::DocId;

use crate::error::IndexError;
use crate::posting::{Posting, PostingList};

/// Score quantization factor: scores in `[0, 1]` keep ~6 significant decimal
/// digits, which is far below the ranking granularity the experiments need.
const SCORE_SCALE: f64 = 1_000_000.0;

/// Appends `value` in variable-byte (LEB128) encoding.
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one varint starting at `pos`, returning `(value, next_pos)`.
pub fn read_varint(buf: &[u8], mut pos: usize) -> Result<(u64, usize), IndexError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(pos)
            .ok_or_else(|| IndexError::CorruptPostings("truncated varint".into()))?;
        pos += 1;
        if shift >= 64 {
            return Err(IndexError::CorruptPostings("varint overflow".into()));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok((value, pos));
        }
        shift += 7;
    }
}

/// Encodes a posting list into a compact byte buffer.
///
/// Layout: varint count, then for each posting (in ascending doc-id order)
/// varint delta(doc id), varint tf, varint quantized score.
pub fn encode_posting_list(list: &PostingList) -> Vec<u8> {
    let mut by_doc: Vec<&Posting> = list.postings().iter().collect();
    by_doc.sort_unstable_by_key(|p| p.doc);
    let mut out = Vec::with_capacity(by_doc.len() * 4 + 4);
    write_varint(&mut out, by_doc.len() as u64);
    let mut prev = 0u64;
    for p in by_doc {
        let id = u64::from(p.doc.0);
        write_varint(&mut out, id - prev);
        prev = id;
        write_varint(&mut out, u64::from(p.tf));
        let q = (p.score.clamp(0.0, u32::MAX as f64 / SCORE_SCALE) * SCORE_SCALE).round() as u64;
        write_varint(&mut out, q);
    }
    out
}

/// Decodes a posting list produced by [`encode_posting_list`].
pub fn decode_posting_list(buf: &[u8]) -> Result<PostingList, IndexError> {
    let (count, mut pos) = read_varint(buf, 0)?;
    let mut postings = Vec::with_capacity(count as usize);
    let mut doc = 0u64;
    for _ in 0..count {
        let (delta, p1) = read_varint(buf, pos)?;
        let (tf, p2) = read_varint(buf, p1)?;
        let (q, p3) = read_varint(buf, p2)?;
        pos = p3;
        doc += delta;
        if doc > u64::from(u32::MAX) || tf > u64::from(u32::MAX) {
            return Err(IndexError::CorruptPostings("value out of range".into()));
        }
        postings.push(Posting::new(
            DocId(doc as u32),
            tf as u32,
            q as f64 / SCORE_SCALE,
        ));
    }
    if pos != buf.len() {
        return Err(IndexError::CorruptPostings(format!(
            "{} trailing bytes after postings",
            buf.len() - pos
        )));
    }
    Ok(PostingList::from_postings(postings))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(items: &[(u32, u32, f64)]) -> PostingList {
        PostingList::from_postings(
            items
                .iter()
                .map(|&(d, tf, s)| Posting::new(DocId(d), tf, s))
                .collect(),
        )
    }

    #[test]
    fn varint_roundtrips_boundary_values() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let (back, pos) = read_varint(&buf, 0).unwrap();
            assert_eq!(back, v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_small_values_use_one_byte() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 100);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_varint(&mut buf, 300);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn truncated_varint_is_an_error() {
        // 0x80 has the continuation bit set but nothing follows.
        assert!(read_varint(&[0x80], 0).is_err());
        assert!(read_varint(&[], 0).is_err());
    }

    #[test]
    fn posting_list_roundtrips() {
        let original = list(&[(3, 2, 0.4), (17, 5, 0.125), (4000, 1, 0.033333)]);
        let buf = encode_posting_list(&original);
        let decoded = decode_posting_list(&buf).unwrap();
        assert_eq!(decoded.len(), 3);
        for (a, b) in original.iter().zip(decoded.iter()) {
            // Same order because quantization keeps 6 decimal digits.
            assert_eq!(a.doc, b.doc);
            assert_eq!(a.tf, b.tf);
            assert!((a.score - b.score).abs() < 2.0 / SCORE_SCALE);
        }
    }

    #[test]
    fn empty_posting_list_roundtrips() {
        let buf = encode_posting_list(&PostingList::new());
        assert_eq!(buf, vec![0]);
        assert!(decode_posting_list(&buf).unwrap().is_empty());
    }

    #[test]
    fn delta_encoding_shrinks_dense_doc_ids() {
        let dense = list(&(0..1000u32).map(|d| (d, 1, 0.5)).collect::<Vec<_>>());
        let sparse = list(&(0..1000u32).map(|d| (d * 50_000, 1, 0.5)).collect::<Vec<_>>());
        let dense_bytes = encode_posting_list(&dense).len();
        let sparse_bytes = encode_posting_list(&sparse).len();
        assert!(
            dense_bytes < sparse_bytes,
            "dense {dense_bytes} should be smaller than sparse {sparse_bytes}"
        );
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut buf = encode_posting_list(&list(&[(1, 1, 0.5)]));
        buf.push(0x00);
        assert!(decode_posting_list(&buf).is_err());
    }

    #[test]
    fn corrupt_count_is_detected() {
        // Claim 5 postings but provide none.
        let buf = vec![5u8];
        assert!(decode_posting_list(&buf).is_err());
    }
}
