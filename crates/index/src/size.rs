//! Index size accounting for the storage-overhead experiment (Section 6.3).
//!
//! The paper's argument is that Zerber+R attaches one transformed relevance
//! score (TRS) per posting element and therefore introduces **no storage
//! overhead** compared to an ordinary inverted index, which also stores one
//! relevance score per element.  To verify this quantitatively the harness
//! needs byte-level size reports for both index types; the conventions here
//! follow Section 6.6, which encodes one posting element in 64 bits.

use serde::{Deserialize, Serialize};

use crate::compress::encode_posting_list;
use crate::posting::PostingList;

/// Bytes used by one plain (uncompressed) posting element: 64 bits, the
/// encoding assumed in Section 6.6 of the paper.
pub const PLAIN_POSTING_BYTES: usize = 8;

/// Size report of an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexSizeReport {
    /// Number of posting lists.
    pub num_lists: usize,
    /// Total number of posting elements.
    pub num_postings: usize,
    /// Size with the paper's fixed 64-bit element encoding.
    pub plain_bytes: usize,
    /// Size with delta + varint compression (what a production index would
    /// actually store for the plaintext baseline).
    pub compressed_bytes: usize,
}

impl IndexSizeReport {
    /// Measures a collection of posting lists.
    pub fn measure<'a, I>(lists: I) -> Self
    where
        I: IntoIterator<Item = &'a PostingList>,
    {
        let mut report = IndexSizeReport {
            num_lists: 0,
            num_postings: 0,
            plain_bytes: 0,
            compressed_bytes: 0,
        };
        for list in lists {
            report.num_lists += 1;
            report.num_postings += list.len();
            report.plain_bytes += list.len() * PLAIN_POSTING_BYTES;
            report.compressed_bytes += encode_posting_list(list).len();
        }
        report
    }

    /// Average bytes per posting element under the plain encoding.
    pub fn plain_bytes_per_posting(&self) -> f64 {
        if self.num_postings == 0 {
            0.0
        } else {
            self.plain_bytes as f64 / self.num_postings as f64
        }
    }

    /// Relative overhead of this report against a baseline
    /// (`self / baseline - 1`), using the plain encoding.
    pub fn overhead_vs(&self, baseline: &IndexSizeReport) -> f64 {
        if baseline.plain_bytes == 0 {
            return 0.0;
        }
        self.plain_bytes as f64 / baseline.plain_bytes as f64 - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posting::Posting;
    use zerber_corpus::DocId;

    fn list(n: u32) -> PostingList {
        PostingList::from_postings(
            (0..n)
                .map(|d| Posting::new(DocId(d), d + 1, f64::from(d + 1) / 100.0))
                .collect(),
        )
    }

    #[test]
    fn measure_counts_lists_and_postings() {
        let lists = [list(3), list(5)];
        let r = IndexSizeReport::measure(lists.iter());
        assert_eq!(r.num_lists, 2);
        assert_eq!(r.num_postings, 8);
        assert_eq!(r.plain_bytes, 8 * PLAIN_POSTING_BYTES);
        assert!(r.compressed_bytes > 0);
    }

    #[test]
    fn plain_bytes_per_posting_is_the_constant() {
        let lists = [list(10)];
        let r = IndexSizeReport::measure(lists.iter());
        assert!((r.plain_bytes_per_posting() - PLAIN_POSTING_BYTES as f64).abs() < 1e-12);
    }

    #[test]
    fn identical_indexes_have_zero_overhead() {
        let a = IndexSizeReport::measure([list(4)].iter());
        let b = IndexSizeReport::measure([list(4)].iter());
        assert!(a.overhead_vs(&b).abs() < 1e-12);
    }

    #[test]
    fn larger_index_has_positive_overhead() {
        let small = IndexSizeReport::measure([list(4)].iter());
        let large = IndexSizeReport::measure([list(8)].iter());
        assert!(large.overhead_vs(&small) > 0.9);
        assert!(small.overhead_vs(&large) < 0.0);
    }

    #[test]
    fn empty_measurement_is_all_zero() {
        let r = IndexSizeReport::measure(std::iter::empty());
        assert_eq!(r.num_postings, 0);
        assert_eq!(r.plain_bytes_per_posting(), 0.0);
        assert_eq!(r.overhead_vs(&r), 0.0);
    }
}
