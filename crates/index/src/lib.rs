//! Ordinary (non-confidential) inverted index substrate.
//!
//! This crate implements the baseline data structure the paper starts from
//! (Figure 1): a per-term posting list whose elements carry plaintext
//! relevance scores, sorted descending so that the server can answer a top-k
//! query by returning the head of the list.
//!
//! It provides:
//!
//! * [`posting::Posting`] / [`posting::PostingList`] — score-sorted posting
//!   lists with incremental insert/remove,
//! * [`score`] — the two scoring models of Section 3.2 (normalized TF,
//!   Equation 4, and TF×IDF, Equation 3),
//! * [`index::InvertedIndex`] — index construction, single-term and
//!   multi-term top-k queries,
//! * [`topk::TopK`] — a bounded best-k accumulator,
//! * [`compress`] — delta + varint posting-list compression used for byte
//!   accounting,
//! * [`size::IndexSizeReport`] — the storage measurements of Section 6.3.

pub mod compress;
pub mod error;
pub mod index;
pub mod posting;
pub mod score;
pub mod size;
pub mod topk;

pub use error::IndexError;
pub use index::{build_with_stats, InvertedIndex};
pub use posting::{Posting, PostingList};
pub use score::{score_query, NormalizedTf, ScoringModel, TfIdf};
pub use size::{IndexSizeReport, PLAIN_POSTING_BYTES};
pub use topk::{ScoredDoc, TopK};
