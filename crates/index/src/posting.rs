//! Posting elements and posting lists of the ordinary inverted index.
//!
//! Figure 1 of the paper: an inverted index is a sequence of posting lists;
//! every posting element represents one document containing the term and
//! carries the relevance score used for ranking.  Elements are kept sorted by
//! descending score so that top-k queries can prune low-scored elements.

use serde::{Deserialize, Serialize};
use zerber_corpus::DocId;

/// One posting element: a document reference plus ranking information.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Posting {
    /// The referenced document.
    pub doc: DocId,
    /// Raw term frequency `TF` of the term in the document.
    pub tf: u32,
    /// Relevance score used for ranking (normalized TF by default,
    /// Equation 4 of the paper).
    pub score: f64,
}

impl Posting {
    /// Creates a posting element.
    pub fn new(doc: DocId, tf: u32, score: f64) -> Self {
        Posting { doc, tf, score }
    }
}

/// A posting list sorted by descending relevance score.
///
/// Ties are broken by ascending document id so that ordering is total and
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PostingList {
    postings: Vec<Posting>,
}

impl PostingList {
    /// Creates an empty posting list.
    pub fn new() -> Self {
        PostingList::default()
    }

    /// Creates a posting list from unsorted elements.
    pub fn from_postings(mut postings: Vec<Posting>) -> Self {
        sort_by_score(&mut postings);
        PostingList { postings }
    }

    /// Creates a posting list from elements already in descending-score
    /// order, preserving their exact sequence (ties keep the given order).
    ///
    /// Used by the order-exact codec in [`crate::compress`], where re-sorting
    /// could reshuffle postings whose scores became equal under quantization.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the elements are not score-descending.
    pub fn from_sorted_postings(postings: Vec<Posting>) -> Self {
        debug_assert!(
            postings.windows(2).all(|w| w[0].score >= w[1].score),
            "postings must be in descending-score order"
        );
        PostingList { postings }
    }

    /// Number of posting elements (the document frequency of the term).
    pub fn len(&self) -> usize {
        self.postings.len()
    }

    /// Returns `true` if the list has no elements.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// The elements in descending-score order.
    pub fn postings(&self) -> &[Posting] {
        &self.postings
    }

    /// The `k` highest-scored elements (fewer if the list is shorter).
    pub fn top_k(&self, k: usize) -> &[Posting] {
        &self.postings[..k.min(self.postings.len())]
    }

    /// Inserts one element, keeping the descending-score order.
    ///
    /// Insertion is `O(n)`; it models the incremental index updates of the
    /// collaborative scenario (Section 5 of the paper) where single posting
    /// elements arrive as documents are added.
    pub fn insert(&mut self, p: Posting) {
        let pos = self.postings.partition_point(|q| {
            (q.score, std::cmp::Reverse(q.doc)) > (p.score, std::cmp::Reverse(p.doc))
        });
        self.postings.insert(pos, p);
    }

    /// Removes all postings that reference `doc`, returning how many were
    /// removed.  Models document deletion.
    pub fn remove_doc(&mut self, doc: DocId) -> usize {
        let before = self.postings.len();
        self.postings.retain(|p| p.doc != doc);
        before - self.postings.len()
    }

    /// Looks up the posting for `doc`, if present.
    pub fn find(&self, doc: DocId) -> Option<&Posting> {
        self.postings.iter().find(|p| p.doc == doc)
    }

    /// Iterates over the elements in descending-score order.
    pub fn iter(&self) -> impl Iterator<Item = &Posting> {
        self.postings.iter()
    }
}

/// Sorts postings by `(score desc, doc id asc)`.
pub(crate) fn sort_by_score(postings: &mut [Posting]) {
    postings.sort_unstable_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.doc.cmp(&b.doc))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(doc: u32, tf: u32, score: f64) -> Posting {
        Posting::new(DocId(doc), tf, score)
    }

    #[test]
    fn from_postings_sorts_by_descending_score() {
        let list = PostingList::from_postings(vec![p(1, 3, 0.3), p(2, 5, 0.5), p(3, 2, 0.2)]);
        let scores: Vec<f64> = list.iter().map(|q| q.score).collect();
        assert_eq!(scores, vec![0.5, 0.3, 0.2]);
    }

    #[test]
    fn ties_are_broken_by_doc_id() {
        let list = PostingList::from_postings(vec![p(9, 1, 0.4), p(2, 1, 0.4), p(5, 1, 0.4)]);
        let docs: Vec<u32> = list.iter().map(|q| q.doc.0).collect();
        assert_eq!(docs, vec![2, 5, 9]);
    }

    #[test]
    fn top_k_returns_at_most_k_elements() {
        let list = PostingList::from_postings(vec![p(1, 1, 0.1), p(2, 2, 0.2), p(3, 3, 0.3)]);
        assert_eq!(list.top_k(2).len(), 2);
        assert_eq!(list.top_k(2)[0].doc, DocId(3));
        assert_eq!(list.top_k(10).len(), 3);
        assert!(list.top_k(0).is_empty());
    }

    #[test]
    fn insert_keeps_the_order_invariant() {
        let mut list = PostingList::new();
        for (i, s) in [0.2, 0.9, 0.5, 0.7, 0.1].iter().enumerate() {
            list.insert(p(i as u32, 1, *s));
        }
        let scores: Vec<f64> = list.iter().map(|q| q.score).collect();
        assert_eq!(scores, vec![0.9, 0.7, 0.5, 0.2, 0.1]);
        assert_eq!(list.len(), 5);
    }

    #[test]
    fn remove_doc_deletes_matching_postings() {
        let mut list = PostingList::from_postings(vec![p(1, 1, 0.1), p(2, 2, 0.2)]);
        assert_eq!(list.remove_doc(DocId(1)), 1);
        assert_eq!(list.remove_doc(DocId(1)), 0);
        assert_eq!(list.len(), 1);
        assert!(list.find(DocId(2)).is_some());
        assert!(list.find(DocId(1)).is_none());
    }

    #[test]
    fn empty_list_behaves() {
        let list = PostingList::new();
        assert!(list.is_empty());
        assert!(list.top_k(5).is_empty());
        assert!(list.find(DocId(0)).is_none());
    }
}
