//! The ordinary inverted index (the paper's non-confidential baseline).
//!
//! This is the index of Figure 1: one posting list per term, every posting
//! element carries the relevance score in the clear, lists are sorted by
//! descending score so the server can answer a top-k query by returning the
//! first `k` elements.  It provides the "ordinary inverted index" reference
//! point used throughout Section 6 (storage overhead, bandwidth, response
//! sizes).

use std::collections::{BTreeMap, HashMap};

use zerber_corpus::{Corpus, CorpusStats, DocId, TermId};

use crate::error::IndexError;
use crate::posting::{Posting, PostingList};
use crate::score::{NormalizedTf, ScoringModel};
use crate::size::IndexSizeReport;
use crate::topk::{ScoredDoc, TopK};

/// An immutable-by-default, updatable inverted index.
///
/// Posting lists are kept in a `BTreeMap` so every iteration — size reports,
/// [`InvertedIndex::lists`], storage-overhead tables — visits terms in
/// ascending `TermId` order and the reported output is identical across runs
/// (a `HashMap` here leaked its random iteration order into the harness
/// output).
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    lists: BTreeMap<TermId, PostingList>,
    doc_lengths: HashMap<DocId, u32>,
}

impl InvertedIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        InvertedIndex::default()
    }

    /// Builds the index from a corpus using normalized-TF scoring
    /// (Equation 4), the model Zerber+R assumes.
    pub fn build(corpus: &Corpus) -> Self {
        Self::build_with_model(corpus, &NormalizedTf)
    }

    /// Builds the index from a corpus with an arbitrary scoring model.
    pub fn build_with_model<M: ScoringModel>(corpus: &Corpus, model: &M) -> Self {
        let mut index = InvertedIndex::new();
        for (doc_id, doc) in corpus.docs() {
            index.doc_lengths.insert(doc_id, doc.length);
            for &(term, tf) in &doc.term_counts {
                let score = model.score(term, doc_id, tf, doc.length);
                index
                    .lists
                    .entry(term)
                    .or_default()
                    .insert(Posting::new(doc_id, tf, score));
            }
        }
        index
    }

    /// Number of terms with a non-empty posting list.
    pub fn num_terms(&self) -> usize {
        self.lists.len()
    }

    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        self.doc_lengths.len()
    }

    /// Total number of posting elements.
    pub fn num_postings(&self) -> usize {
        self.lists.values().map(PostingList::len).sum()
    }

    /// Document frequency `n_d(t)` of a term (0 if not indexed).
    pub fn doc_freq(&self, term: TermId) -> usize {
        self.lists.get(&term).map_or(0, PostingList::len)
    }

    /// The posting list of a term.
    pub fn posting_list(&self, term: TermId) -> Option<&PostingList> {
        self.lists.get(&term)
    }

    /// Iterates over `(TermId, &PostingList)` pairs in ascending term order.
    pub fn lists(&self) -> impl Iterator<Item = (TermId, &PostingList)> {
        self.lists.iter().map(|(&t, l)| (t, l))
    }

    /// Known length of a document (terms with multiplicity).
    pub fn doc_length(&self, doc: DocId) -> Option<u32> {
        self.doc_lengths.get(&doc).copied()
    }

    /// Adds a single document given its term counts.  Models the incremental
    /// inserts of the collaborative scenario.
    pub fn insert_document(&mut self, doc: DocId, term_counts: &[(TermId, u32)]) {
        let length: u32 = term_counts.iter().map(|&(_, c)| c).sum();
        self.doc_lengths.insert(doc, length);
        let model = NormalizedTf;
        for &(term, tf) in term_counts {
            let score = model.score(term, doc, tf, length);
            self.lists
                .entry(term)
                .or_default()
                .insert(Posting::new(doc, tf, score));
        }
    }

    /// Removes a document from every posting list, returning how many posting
    /// elements were deleted.
    pub fn remove_document(&mut self, doc: DocId) -> usize {
        let mut removed = 0;
        self.lists.retain(|_, list| {
            removed += list.remove_doc(doc);
            !list.is_empty()
        });
        self.doc_lengths.remove(&doc);
        removed
    }

    /// Answers a single-term top-k query: the `k` highest-scored posting
    /// elements of the term's list.
    pub fn query_term(&self, term: TermId, k: usize) -> Result<Vec<Posting>, IndexError> {
        if k == 0 {
            return Err(IndexError::InvalidQuery("k must be greater than 0".into()));
        }
        let list = self
            .lists
            .get(&term)
            .ok_or_else(|| IndexError::TermNotIndexed(format!("{term}")))?;
        Ok(list.top_k(k).to_vec())
    }

    /// Answers a multi-term query by summing per-term scores
    /// (term-at-a-time accumulation), returning the top-k documents.
    ///
    /// This is what an ordinary search engine does with Equation 3; the
    /// confidential index instead executes a sequence of single-term queries
    /// (Section 3.2), which is compared against this exact result in the
    /// accuracy experiments.
    pub fn query_multi(&self, terms: &[TermId], k: usize) -> Result<Vec<ScoredDoc>, IndexError> {
        if k == 0 {
            return Err(IndexError::InvalidQuery("k must be greater than 0".into()));
        }
        if terms.is_empty() {
            return Err(IndexError::InvalidQuery("empty query".into()));
        }
        // Accumulate in doc-id order: pushing ties into the top-k heap in
        // HashMap order made equal-score results flip between runs.
        let mut acc: BTreeMap<DocId, f64> = BTreeMap::new();
        for &term in terms {
            if let Some(list) = self.lists.get(&term) {
                for p in list.iter() {
                    *acc.entry(p.doc).or_insert(0.0) += p.score;
                }
            }
        }
        let mut topk = TopK::new(k);
        for (doc, score) in acc {
            topk.push(ScoredDoc::new(doc, score));
        }
        Ok(topk.into_sorted())
    }

    /// Computes the storage-size report used by the Section 6.3 experiment.
    pub fn size_report(&self) -> IndexSizeReport {
        IndexSizeReport::measure(self.lists.values())
    }
}

/// Builds an index together with corpus statistics in one pass (convenience
/// for the benchmark harness).
pub fn build_with_stats(corpus: &Corpus) -> (InvertedIndex, CorpusStats) {
    (InvertedIndex::build(corpus), CorpusStats::compute(corpus))
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerber_corpus::{CorpusBuilder, Document, GroupId};

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        // Mirrors the example of Figures 1-3: "and" is frequent, "imclone" rare.
        b.add_document(Document::new(
            "1.txt",
            GroupId(0),
            "imclone and imclone and no",
        ))
        .unwrap();
        b.add_document(Document::new(
            "2.doc",
            GroupId(0),
            "and and and and process",
        ))
        .unwrap();
        b.add_document(Document::new(
            "3.txt",
            GroupId(1),
            "process imclone process",
        ))
        .unwrap();
        b.build()
    }

    #[test]
    fn build_indexes_every_posting_once() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let expected: usize = c.docs().map(|(_, d)| d.distinct_terms()).sum();
        assert_eq!(idx.num_postings(), expected);
        assert_eq!(idx.num_docs(), 3);
        assert_eq!(idx.num_terms(), c.num_terms());
    }

    #[test]
    fn single_term_query_returns_descending_scores() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let and = c.dictionary().get("and").unwrap();
        let res = idx.query_term(and, 2).unwrap();
        assert_eq!(res.len(), 2);
        assert!(res[0].score >= res[1].score);
        // 2.doc has 4/5 = 0.8, 1.txt has 2/5 = 0.4.
        assert_eq!(res[0].doc, DocId(1));
        assert!((res[0].score - 0.8).abs() < 1e-12);
    }

    #[test]
    fn unknown_term_or_zero_k_is_an_error() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let and = c.dictionary().get("and").unwrap();
        assert!(matches!(
            idx.query_term(TermId(4242), 5),
            Err(IndexError::TermNotIndexed(_))
        ));
        assert!(matches!(
            idx.query_term(and, 0),
            Err(IndexError::InvalidQuery(_))
        ));
    }

    #[test]
    fn multi_term_query_accumulates_scores() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let and = c.dictionary().get("and").unwrap();
        let imclone = c.dictionary().get("imclone").unwrap();
        let res = idx.query_multi(&[and, imclone], 3).unwrap();
        // 1.txt: 0.4 + 0.4 = 0.8 ; 2.doc: 0.8 ; 3.txt: 1/3.
        assert_eq!(res.len(), 3);
        assert!((res[0].score - 0.8).abs() < 1e-12);
        assert!(res[2].score < res[1].score);
    }

    #[test]
    fn multi_term_query_with_unknown_terms_ignores_them() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let and = c.dictionary().get("and").unwrap();
        let res = idx.query_multi(&[and, TermId(999)], 10).unwrap();
        assert_eq!(res.len(), idx.doc_freq(and));
    }

    #[test]
    fn insert_and_remove_documents_update_lists() {
        let c = corpus();
        let mut idx = InvertedIndex::build(&c);
        let imclone = c.dictionary().get("imclone").unwrap();
        let before = idx.doc_freq(imclone);
        idx.insert_document(DocId(100), &[(imclone, 3)]);
        assert_eq!(idx.doc_freq(imclone), before + 1);
        assert_eq!(idx.doc_length(DocId(100)), Some(3));
        // New doc has relevance 1.0 and must rank first.
        let top = idx.query_term(imclone, 1).unwrap();
        assert_eq!(top[0].doc, DocId(100));
        let removed = idx.remove_document(DocId(100));
        assert_eq!(removed, 1);
        assert_eq!(idx.doc_freq(imclone), before);
    }

    #[test]
    fn removing_the_last_document_of_a_term_drops_its_list() {
        let c = corpus();
        let mut idx = InvertedIndex::build(&c);
        let no = c.dictionary().get("no").unwrap();
        assert_eq!(idx.doc_freq(no), 1);
        idx.remove_document(DocId(0));
        assert_eq!(idx.doc_freq(no), 0);
        assert!(idx.posting_list(no).is_none());
    }

    #[test]
    fn lists_iterate_in_ascending_term_order() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let order: Vec<TermId> = idx.lists().map(|(t, _)| t).collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(
            order, sorted,
            "size reports must visit terms in a fixed order"
        );
        // Rebuilding yields the identical traversal (no hash-order leakage).
        let again: Vec<TermId> = InvertedIndex::build(&c).lists().map(|(t, _)| t).collect();
        assert_eq!(order, again);
    }

    #[test]
    fn size_report_counts_postings() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let report = idx.size_report();
        assert_eq!(report.num_postings, idx.num_postings());
        assert!(report.plain_bytes > 0);
        assert!(report.compressed_bytes > 0);
    }

    #[test]
    fn build_with_stats_is_consistent() {
        let c = corpus();
        let (idx, stats) = build_with_stats(&c);
        let and = c.dictionary().get("and").unwrap();
        assert_eq!(idx.doc_freq(and) as u32, stats.doc_freq(and).unwrap());
    }
}
