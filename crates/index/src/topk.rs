//! Top-k selection utilities.
//!
//! Top-k is the standard IR technique the paper builds on (Section 1): only
//! the `k` highest-ranked documents are returned.  This module provides a
//! bounded min-heap accumulator shared by the ordinary index (multi-term
//! queries) and by the evaluation harness.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use zerber_corpus::DocId;

/// A `(doc, score)` result entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredDoc {
    /// The document.
    pub doc: DocId,
    /// Its (possibly aggregated) relevance score.
    pub score: f64,
}

impl ScoredDoc {
    /// Creates an entry.
    pub fn new(doc: DocId, score: f64) -> Self {
        ScoredDoc { doc, score }
    }
}

/// Ordering used throughout: higher score first, ties broken by lower doc id.
fn better(a: &ScoredDoc, b: &ScoredDoc) -> Ordering {
    a.score
        .partial_cmp(&b.score)
        .unwrap_or(Ordering::Equal)
        .then(b.doc.cmp(&a.doc))
}

/// Wrapper giving `BinaryHeap` min-heap semantics over [`better`].
#[derive(Debug, Clone, Copy, PartialEq)]
struct MinEntry(ScoredDoc);

impl Eq for MinEntry {}

impl PartialOrd for MinEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MinEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: the heap's max is the *worst* kept result.
        better(&other.0, &self.0)
    }
}

/// Bounded accumulator that keeps the `k` best [`ScoredDoc`] entries.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<MinEntry>,
}

impl TopK {
    /// Creates an accumulator for `k` results.  `k = 0` keeps nothing.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// The configured `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of entries currently held (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no entry has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Offers an entry; it is kept only if it ranks among the best `k` so far.
    pub fn push(&mut self, entry: ScoredDoc) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(MinEntry(entry));
            return;
        }
        if let Some(worst) = self.heap.peek() {
            if better(&entry, &worst.0) == Ordering::Greater {
                self.heap.pop();
                self.heap.push(MinEntry(entry));
            }
        }
    }

    /// The score of the worst kept entry, or `None` if fewer than `k` entries
    /// are held.  Useful as a pruning threshold.
    pub fn threshold(&self) -> Option<f64> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(|e| e.0.score)
        }
    }

    /// Consumes the accumulator, returning the results in ranked order
    /// (best first).
    pub fn into_sorted(self) -> Vec<ScoredDoc> {
        let mut v: Vec<ScoredDoc> = self.heap.into_iter().map(|e| e.0).collect();
        v.sort_unstable_by(|a, b| better(b, a));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sd(doc: u32, score: f64) -> ScoredDoc {
        ScoredDoc::new(DocId(doc), score)
    }

    #[test]
    fn keeps_only_the_best_k() {
        let mut acc = TopK::new(3);
        for (d, s) in [(0, 0.1), (1, 0.9), (2, 0.4), (3, 0.7), (4, 0.2)] {
            acc.push(sd(d, s));
        }
        let out = acc.into_sorted();
        let docs: Vec<u32> = out.iter().map(|e| e.doc.0).collect();
        assert_eq!(docs, vec![1, 3, 2]);
    }

    #[test]
    fn results_are_sorted_best_first() {
        let mut acc = TopK::new(10);
        for (d, s) in [(5, 0.3), (6, 0.8), (7, 0.5)] {
            acc.push(sd(d, s));
        }
        let out = acc.into_sorted();
        assert!(out.windows(2).all(|w| w[0].score >= w[1].score));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn ties_prefer_lower_doc_ids() {
        let mut acc = TopK::new(2);
        for d in [9, 1, 5] {
            acc.push(sd(d, 0.5));
        }
        let out = acc.into_sorted();
        let docs: Vec<u32> = out.iter().map(|e| e.doc.0).collect();
        assert_eq!(docs, vec![1, 5]);
    }

    #[test]
    fn threshold_is_the_worst_kept_score() {
        let mut acc = TopK::new(2);
        assert_eq!(acc.threshold(), None);
        acc.push(sd(0, 0.9));
        assert_eq!(acc.threshold(), None);
        acc.push(sd(1, 0.4));
        assert_eq!(acc.threshold(), Some(0.4));
        acc.push(sd(2, 0.6));
        assert_eq!(acc.threshold(), Some(0.6));
    }

    #[test]
    fn k_zero_keeps_nothing() {
        let mut acc = TopK::new(0);
        acc.push(sd(0, 1.0));
        assert!(acc.is_empty());
        assert!(acc.into_sorted().is_empty());
    }

    #[test]
    fn k_larger_than_input_returns_everything() {
        let mut acc = TopK::new(100);
        for d in 0..5u32 {
            acc.push(sd(d, f64::from(d)));
        }
        assert_eq!(acc.len(), 5);
        assert_eq!(acc.k(), 100);
    }
}
