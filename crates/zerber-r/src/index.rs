//! The ordered confidential index (Section 5): merged posting lists whose
//! elements carry a plaintext TRS and are kept sorted by it, so the untrusted
//! server can answer top-k requests without decrypting anything.

use std::collections::HashMap;

use zerber_base::{EncryptedElement, MergePlan, MergedListId, PostingPayload};
use zerber_corpus::{Corpus, GroupId};
use zerber_crypto::{DeterministicRng, GroupKeys, MasterKey};
use zerber_index::IndexSizeReport;

use crate::error::ZerberRError;
use crate::train::RstfModel;

/// One element of an ordered merged posting list.
///
/// The TRS and the group tag are visible to the index server (the TRS is what
/// lets it rank, the group is what lets it enforce access control); the term,
/// document id and raw score stay encrypted.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderedElement {
    /// Transformed relevance score, in `[0, 1]`.
    pub trs: f64,
    /// Access-control group of the underlying document.
    pub group: GroupId,
    /// The sealed posting payload.
    pub sealed: EncryptedElement,
}

/// Bytes the server stores per element beyond the sealed payload: the 8-byte
/// TRS.  (The group tag is already accounted inside
/// [`EncryptedElement::stored_bytes`].)
pub const TRS_BYTES: usize = 8;

/// The Zerber+R ordered index.
#[derive(Debug, Clone)]
pub struct OrderedIndex {
    lists: Vec<Vec<OrderedElement>>,
    plan: MergePlan,
}

impl OrderedIndex {
    /// Builds the ordered index: every posting element is sealed under its
    /// document's group key, tagged with its TRS and inserted into its merged
    /// list, which is kept sorted by descending TRS.
    pub fn build(
        corpus: &Corpus,
        plan: MergePlan,
        model: &RstfModel,
        master: &MasterKey,
        seed: u64,
    ) -> Result<Self, ZerberRError> {
        let mut rng = DeterministicRng::from_u64(seed);
        let mut group_keys: HashMap<GroupId, GroupKeys> = HashMap::new();
        let mut lists: Vec<Vec<OrderedElement>> = vec![Vec::new(); plan.num_lists()];
        for (doc_id, doc) in corpus.docs() {
            let keys = group_keys
                .entry(doc.group)
                .or_insert_with(|| master.group_keys(doc.group.0));
            for &(term, tf) in &doc.term_counts {
                let list = plan.list_of(term)?;
                let payload = PostingPayload {
                    term,
                    doc: doc_id,
                    tf,
                    doc_len: doc.length,
                };
                let trs = model.transform(term, doc_id, payload.relevance());
                let sealed = EncryptedElement::seal(&payload, doc.group, keys, list, &mut rng)?;
                lists[list.0 as usize].push(OrderedElement {
                    trs,
                    group: doc.group,
                    sealed,
                });
            }
        }
        for list in &mut lists {
            sort_by_trs(list);
        }
        Ok(OrderedIndex { lists, plan })
    }

    /// The merge plan underlying the index.
    pub fn plan(&self) -> &MergePlan {
        &self.plan
    }

    /// Decomposes the index into its raw ordered lists and the merge plan.
    ///
    /// This is the hand-off point to a serving-side storage engine (e.g. the
    /// sharded store), which re-partitions the lists under its own locking
    /// discipline without copying the elements.
    pub fn into_parts(self) -> (Vec<Vec<OrderedElement>>, MergePlan) {
        (self.lists, self.plan)
    }

    /// Rebuilds an index from parts produced by [`OrderedIndex::into_parts`].
    pub fn from_parts(lists: Vec<Vec<OrderedElement>>, plan: MergePlan) -> Self {
        OrderedIndex { lists, plan }
    }

    /// Number of merged posting lists.
    pub fn num_lists(&self) -> usize {
        self.lists.len()
    }

    /// Total number of posting elements.
    pub fn num_elements(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    /// Length of one merged list.
    pub fn list_len(&self, id: MergedListId) -> Result<usize, ZerberRError> {
        self.lists
            .get(id.0 as usize)
            .map(Vec::len)
            .ok_or(ZerberRError::UnknownList(id.0))
    }

    /// The full ordered list (used by audits and tests; a real server would
    /// never ship it wholesale unless asked).
    pub fn list(&self, id: MergedListId) -> Result<&[OrderedElement], ZerberRError> {
        self.lists
            .get(id.0 as usize)
            .map(Vec::as_slice)
            .ok_or(ZerberRError::UnknownList(id.0))
    }

    /// Server-side fetch: returns up to `count` elements of the merged list
    /// starting at `offset` in descending-TRS order, optionally filtered to
    /// the groups the requesting user may access.
    ///
    /// This is the primitive the query protocol builds on: the server can
    /// evaluate it using only public information (TRS order, group tags).
    pub fn fetch(
        &self,
        id: MergedListId,
        offset: usize,
        count: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<Vec<&OrderedElement>, ZerberRError> {
        let list = self.list(id)?;
        let filtered = list.iter().filter(|e| match accessible {
            None => true,
            Some(groups) => groups.contains(&e.group),
        });
        Ok(filtered.skip(offset).take(count).collect())
    }

    /// Number of elements of the list visible to a user with access to
    /// `accessible` groups.
    pub fn visible_len(
        &self,
        id: MergedListId,
        accessible: Option<&[GroupId]>,
    ) -> Result<usize, ZerberRError> {
        let list = self.list(id)?;
        Ok(match accessible {
            None => list.len(),
            Some(groups) => list.iter().filter(|e| groups.contains(&e.group)).count(),
        })
    }

    /// Inserts one new posting element, keeping the list ordered by TRS.
    ///
    /// This is the online insertion path of Section 5: the inserting client
    /// computes the TRS with the published RSTF and sends `(list id, group,
    /// TRS, sealed payload)`; the server only has to binary-search the
    /// insertion position.  No other element moves, so concurrent updates by
    /// other group members stay valid.
    pub fn insert(
        &mut self,
        payload: &PostingPayload,
        group: GroupId,
        keys: &GroupKeys,
        model: &RstfModel,
        rng: &mut DeterministicRng,
    ) -> Result<MergedListId, ZerberRError> {
        let list_id = self.plan.list_of(payload.term)?;
        let trs = model.transform(payload.term, payload.doc, payload.relevance());
        let sealed = EncryptedElement::seal(payload, group, keys, list_id, rng)?;
        let element = OrderedElement { trs, group, sealed };
        let list = &mut self.lists[list_id.0 as usize];
        let pos = list.partition_point(|e| e.trs > trs);
        list.insert(pos, element);
        Ok(list_id)
    }

    /// Server-side insertion of an already sealed element (what the index
    /// server does when it receives an insert request from a client that
    /// computed the TRS itself, Section 5).  The server only needs the merged
    /// list id and the public TRS to find the position; it never sees the
    /// plaintext.
    pub fn insert_sealed(
        &mut self,
        list_id: MergedListId,
        element: OrderedElement,
    ) -> Result<(), ZerberRError> {
        let list = self
            .lists
            .get_mut(list_id.0 as usize)
            .ok_or(ZerberRError::UnknownList(list_id.0))?;
        let pos = list.partition_point(|e| e.trs > element.trs);
        list.insert(pos, element);
        Ok(())
    }

    /// Storage size report (Section 6.3): per element the server stores the
    /// sealed payload, the group tag and an 8-byte TRS — the same "one score
    /// per posting element" budget as the ordinary inverted index.
    pub fn stored_bytes(&self) -> usize {
        self.lists
            .iter()
            .flat_map(|l| l.iter())
            .map(|e| e.sealed.stored_bytes() + TRS_BYTES)
            .sum()
    }

    /// Size report in the same shape as the plaintext index's report, for
    /// side-by-side comparison in the Section 6.3 harness.
    pub fn size_report(&self) -> IndexSizeReport {
        IndexSizeReport {
            num_lists: self.num_lists(),
            num_postings: self.num_elements(),
            plain_bytes: self.num_elements() * zerber_index::PLAIN_POSTING_BYTES,
            compressed_bytes: self.stored_bytes(),
        }
    }

    /// Checks the ordering invariant of every list (used by tests and the
    /// audit example).
    pub fn verify_ordering(&self) -> bool {
        self.lists
            .iter()
            .all(|l| l.windows(2).all(|w| w[0].trs >= w[1].trs))
    }
}

fn sort_by_trs(list: &mut [OrderedElement]) {
    list.sort_by(|a, b| {
        b.trs
            .partial_cmp(&a.trs)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{RstfConfig, RstfModel};
    use zerber_base::{BfmMerge, ConfidentialityParam, MergeScheme};
    use zerber_corpus::{
        sample_split, CorpusGenerator, CorpusStats, CustomProfile, DatasetProfile, DocId,
        SplitConfig, SynthConfig,
    };

    fn corpus() -> Corpus {
        let config = SynthConfig {
            profile: DatasetProfile::Custom(CustomProfile {
                num_docs: 250,
                num_groups: 3,
                vocab_size: 600,
                general_vocab_fraction: 0.5,
                topic_mix: 0.3,
                zipf_exponent: 1.0,
                doc_length_median: 60.0,
                doc_length_sigma: 0.6,
                min_doc_length: 15,
                max_doc_length: 300,
            }),
            scale: 1.0,
            seed: 900,
        };
        CorpusGenerator::new(config).generate().unwrap()
    }

    fn build() -> (Corpus, OrderedIndex, RstfModel, MasterKey, CorpusStats) {
        let c = corpus();
        let stats = CorpusStats::compute(&c);
        let split = sample_split(&c, SplitConfig::default()).unwrap();
        let model = RstfModel::train(&c, &split, &RstfConfig::default()).unwrap();
        let plan = BfmMerge
            .plan(&stats, ConfidentialityParam::new(3.0).unwrap())
            .unwrap();
        let master = MasterKey::new([4u8; 32]);
        let index = OrderedIndex::build(&c, plan, &model, &master, 77).unwrap();
        (c, index, model, master, stats)
    }

    #[test]
    fn build_preserves_element_count_and_ordering() {
        let (c, index, _, _, _) = build();
        let expected: usize = c.docs().map(|(_, d)| d.distinct_terms()).sum();
        assert_eq!(index.num_elements(), expected);
        assert!(index.verify_ordering());
        assert_eq!(index.num_lists(), index.plan().num_lists());
    }

    #[test]
    fn fetch_returns_descending_trs_and_respects_offsets() {
        let (_, index, _, _, _) = build();
        let (list_id, _) = index
            .plan()
            .iter()
            .max_by_key(|(id, _)| index.list_len(*id).unwrap())
            .unwrap();
        let len = index.list_len(list_id).unwrap();
        assert!(len >= 4);
        let first = index.fetch(list_id, 0, 3, None).unwrap();
        let next = index.fetch(list_id, 3, 3, None).unwrap();
        assert_eq!(first.len(), 3);
        assert!(first.windows(2).all(|w| w[0].trs >= w[1].trs));
        if let (Some(last_first), Some(first_next)) = (first.last(), next.first()) {
            assert!(last_first.trs >= first_next.trs);
        }
        // Fetch beyond the end returns what is left.
        let tail = index.fetch(list_id, len - 1, 10, None).unwrap();
        assert_eq!(tail.len(), 1);
        let beyond = index.fetch(list_id, len + 5, 10, None).unwrap();
        assert!(beyond.is_empty());
    }

    #[test]
    fn group_filtering_limits_visibility() {
        let (_, index, _, _, _) = build();
        let (list_id, _) = index
            .plan()
            .iter()
            .max_by_key(|(id, _)| index.list_len(*id).unwrap())
            .unwrap();
        let all = index.visible_len(list_id, None).unwrap();
        let only_g0 = index.visible_len(list_id, Some(&[GroupId(0)])).unwrap();
        assert!(only_g0 <= all);
        let fetched = index.fetch(list_id, 0, all, Some(&[GroupId(0)])).unwrap();
        assert_eq!(fetched.len(), only_g0);
        assert!(fetched.iter().all(|e| e.group == GroupId(0)));
    }

    #[test]
    fn decrypted_order_matches_raw_relevance_order_per_term() {
        // The monotone RSTF must keep each term's elements ranked identically
        // to the plaintext relevance ranking.
        let (c, index, _, master, stats) = build();
        let frequent = stats.terms_by_doc_freq()[0];
        let list_id = index.plan().list_of(frequent).unwrap();
        let list = index.list(list_id).unwrap();
        let keys: HashMap<GroupId, GroupKeys> = (0..c.num_groups() as u32)
            .map(|g| (GroupId(g), master.group_keys(g)))
            .collect();
        let mut rels = Vec::new();
        for e in list {
            let payload = e.sealed.open(&keys[&e.group], list_id).unwrap();
            if payload.term == frequent {
                rels.push(payload.relevance());
            }
        }
        assert!(rels.len() >= 2, "need at least two elements to check order");
        for w in rels.windows(2) {
            assert!(
                w[0] >= w[1] - 1e-12,
                "scanning by TRS must visit a term's elements in relevance order"
            );
        }
    }

    #[test]
    fn insert_keeps_ordering_and_is_retrievable() {
        let (c, mut index, model, master, stats) = build();
        let term = stats.terms_by_doc_freq()[0];
        let keys = master.group_keys(0);
        let mut rng = DeterministicRng::from_u64(123);
        let payload = PostingPayload {
            term,
            doc: DocId(50_000),
            tf: 30,
            doc_len: 40,
        };
        let list_id = index
            .insert(&payload, GroupId(0), &keys, &model, &mut rng)
            .unwrap();
        assert!(index.verify_ordering());
        // The inserted element has very high raw relevance (0.75), so it
        // should appear near the head of the list.
        let head = index.fetch(list_id, 0, 10, None).unwrap();
        let mut found = false;
        for e in head {
            if e.group == GroupId(0) {
                if let Ok(p) = e.sealed.open(&keys, list_id) {
                    if p.doc == DocId(50_000) {
                        found = true;
                        break;
                    }
                }
            }
        }
        assert!(
            found,
            "high-relevance insert should surface near the list head"
        );
        let _ = c;
    }

    #[test]
    fn unknown_list_is_an_error() {
        let (_, index, _, _, _) = build();
        let bad = MergedListId(9_999_999);
        assert!(index.list(bad).is_err());
        assert!(index.fetch(bad, 0, 1, None).is_err());
        assert!(index.list_len(bad).is_err());
        assert!(index.visible_len(bad, None).is_err());
    }

    #[test]
    fn size_report_accounts_one_score_per_element() {
        let (_, index, _, _, _) = build();
        let report = index.size_report();
        assert_eq!(report.num_postings, index.num_elements());
        assert_eq!(
            report.plain_bytes,
            index.num_elements() * zerber_index::PLAIN_POSTING_BYTES
        );
        assert!(index.stored_bytes() > report.plain_bytes);
    }
}
