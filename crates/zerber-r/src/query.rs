//! Top-k query answering over the ordered index (Section 5.2).
//!
//! The client asks the server for the merged posting list containing the
//! queried term together with `k`.  The server returns the `b` highest-TRS
//! elements the user may access (initial response size).  The client decrypts
//! them, keeps those matching the queried term, and — if it still has fewer
//! than `k` — issues follow-up requests.  Zerber+R doubles the response size
//! with every follow-up so the number of round trips stays small and leaks
//! little about the queried term's rarity.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use zerber_corpus::{DocId, GroupId, TermId};
use zerber_crypto::GroupKeys;

use crate::error::ZerberRError;
use crate::index::OrderedIndex;

/// How the response size evolves over follow-up requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum GrowthPolicy {
    /// Zerber+R's policy: request `b`, then `2b`, then `4b`, ... (Equation 12).
    #[default]
    Doubling,
    /// Ablation baseline: every request returns exactly `b` elements.
    Constant,
}

/// Parameters of a top-k retrieval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetrievalConfig {
    /// Number of results the user wants.
    pub k: usize,
    /// Initial response size `b` (the paper's sweet spot is `b = k`,
    /// Section 6.4).
    pub initial_response: usize,
    /// Follow-up growth policy.
    pub growth: GrowthPolicy,
}

impl RetrievalConfig {
    /// Creates a configuration with the paper's default `b = k` and doubling
    /// follow-ups.
    pub fn for_k(k: usize) -> Self {
        RetrievalConfig {
            k,
            initial_response: k,
            growth: GrowthPolicy::Doubling,
        }
    }

    fn validate(&self) -> Result<(), ZerberRError> {
        if self.k == 0 {
            return Err(ZerberRError::InvalidParameter(
                "k must be greater than 0".into(),
            ));
        }
        if self.initial_response == 0 {
            return Err(ZerberRError::InvalidParameter(
                "initial response size b must be greater than 0".into(),
            ));
        }
        Ok(())
    }

    /// Size of the `i`-th request (0 = initial request).
    pub fn request_size(&self, i: usize) -> usize {
        match self.growth {
            GrowthPolicy::Doubling => self.initial_response << i.min(62),
            GrowthPolicy::Constant => self.initial_response,
        }
    }
}

/// Merged multi-term ranking plus the per-term outcomes it was built from.
pub type MultiTermRetrieval = (Vec<(DocId, f64)>, Vec<RetrievalOutcome>);

/// Outcome of one top-k retrieval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetrievalOutcome {
    /// Ranked `(doc, raw relevance)` results of the queried term, best first,
    /// at most `k` entries.
    pub results: Vec<(DocId, f64)>,
    /// Total number of requests sent (initial + follow-ups).
    pub requests: usize,
    /// Total number of posting elements transferred to the client
    /// (`TRes` of Equation 12).
    pub elements_transferred: usize,
    /// Whether the full `k` results were found before the list was exhausted.
    pub satisfied: bool,
}

impl RetrievalOutcome {
    /// Query efficiency ratio `QRatio_eff = k / TRes` (Equation 14).
    pub fn efficiency(&self, k: usize) -> f64 {
        if self.elements_transferred == 0 {
            return 1.0;
        }
        (k as f64 / self.elements_transferred as f64).min(1.0)
    }

    /// Bandwidth overhead versus an ordinary index that would have returned
    /// exactly `k` elements (the per-query term inside Equation 13).
    pub fn bandwidth_overhead(&self, k: usize) -> f64 {
        if k == 0 {
            return 0.0;
        }
        self.elements_transferred as f64 / k as f64
    }
}

/// Executes a single-term top-k query against the ordered index.
///
/// `memberships` holds the group keys of the querying user; the server only
/// returns elements of those groups (access control), and the client uses the
/// same set to decrypt.
pub fn retrieve_topk(
    index: &OrderedIndex,
    term: TermId,
    memberships: &HashMap<GroupId, GroupKeys>,
    config: &RetrievalConfig,
) -> Result<RetrievalOutcome, ZerberRError> {
    config.validate()?;
    let list_id = index.plan().list_of(term)?;
    let accessible: Vec<GroupId> = memberships.keys().copied().collect();
    let visible_total = index.visible_len(list_id, Some(&accessible))?;

    let mut results: Vec<(DocId, f64)> = Vec::with_capacity(config.k);
    let mut offset = 0usize;
    let mut requests = 0usize;
    let mut transferred = 0usize;

    while results.len() < config.k && offset < visible_total {
        let want = config.request_size(requests);
        let batch = index.fetch(list_id, offset, want, Some(&accessible))?;
        requests += 1;
        transferred += batch.len();
        for element in &batch {
            let keys = memberships.get(&element.group).ok_or_else(|| {
                ZerberRError::Base("server returned an element from an inaccessible group".into())
            })?;
            let payload = element.sealed.open(keys, list_id)?;
            if payload.term == term {
                results.push((payload.doc, payload.relevance()));
                if results.len() == config.k {
                    break;
                }
            }
        }
        offset += batch.len();
        if batch.is_empty() {
            break;
        }
    }
    // Elements of one term arrive in TRS order, which is relevance order, but
    // make the contract explicit for consumers.
    results.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    let satisfied = results.len() >= config.k;
    Ok(RetrievalOutcome {
        results,
        requests: requests.max(1),
        elements_transferred: transferred,
        satisfied,
    })
}

/// Executes a multi-term query as a sequence of single-term queries and
/// merges the per-term rankings by summed normalized TF (Section 3.2:
/// Zerber+R deliberately omits IDF, trading a little multi-term accuracy for
/// confidentiality of collection statistics).
pub fn retrieve_multi_term(
    index: &OrderedIndex,
    terms: &[TermId],
    memberships: &HashMap<GroupId, GroupKeys>,
    config: &RetrievalConfig,
) -> Result<MultiTermRetrieval, ZerberRError> {
    if terms.is_empty() {
        return Err(ZerberRError::InvalidParameter("empty query".into()));
    }
    let mut per_term = Vec::with_capacity(terms.len());
    let mut acc: HashMap<DocId, f64> = HashMap::new();
    for &term in terms {
        let outcome = retrieve_topk(index, term, memberships, config)?;
        for &(doc, rel) in &outcome.results {
            *acc.entry(doc).or_insert(0.0) += rel;
        }
        per_term.push(outcome);
    }
    let mut merged: Vec<(DocId, f64)> = acc.into_iter().collect();
    merged.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    merged.truncate(config.k);
    Ok((merged, per_term))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::OrderedIndex;
    use crate::train::{RstfConfig, RstfModel};
    use zerber_base::{BfmMerge, ConfidentialityParam, MergeScheme};
    use zerber_corpus::{
        sample_split, Corpus, CorpusGenerator, CorpusStats, CustomProfile, DatasetProfile,
        SplitConfig, SynthConfig,
    };
    use zerber_crypto::MasterKey;
    use zerber_index::InvertedIndex;

    struct Fixture {
        corpus: Corpus,
        stats: CorpusStats,
        index: OrderedIndex,
        plain: InvertedIndex,
        memberships: HashMap<GroupId, GroupKeys>,
    }

    fn fixture() -> Fixture {
        let config = SynthConfig {
            profile: DatasetProfile::Custom(CustomProfile {
                num_docs: 300,
                num_groups: 3,
                vocab_size: 700,
                general_vocab_fraction: 0.5,
                topic_mix: 0.3,
                zipf_exponent: 1.0,
                doc_length_median: 70.0,
                doc_length_sigma: 0.6,
                min_doc_length: 15,
                max_doc_length: 350,
            }),
            scale: 1.0,
            seed: 1234,
        };
        let corpus = CorpusGenerator::new(config).generate().unwrap();
        let stats = CorpusStats::compute(&corpus);
        let split = sample_split(&corpus, SplitConfig::default()).unwrap();
        let model = RstfModel::train(&corpus, &split, &RstfConfig::default()).unwrap();
        let plan = BfmMerge
            .plan(&stats, ConfidentialityParam::new(3.0).unwrap())
            .unwrap();
        let master = MasterKey::new([8u8; 32]);
        let index = OrderedIndex::build(&corpus, plan, &model, &master, 55).unwrap();
        let plain = InvertedIndex::build(&corpus);
        let memberships: HashMap<GroupId, GroupKeys> = (0..corpus.num_groups() as u32)
            .map(|g| (GroupId(g), master.group_keys(g)))
            .collect();
        Fixture {
            corpus,
            stats,
            index,
            plain,
            memberships,
        }
    }

    #[test]
    fn retrieval_matches_the_plaintext_ranking() {
        let f = fixture();
        let k = 10;
        let config = RetrievalConfig::for_k(k);
        for &term in f.stats.terms_by_doc_freq().iter().take(20) {
            let outcome = retrieve_topk(&f.index, term, &f.memberships, &config).unwrap();
            let reference = f.plain.query_term(term, k).unwrap();
            assert_eq!(outcome.results.len(), reference.len().min(k), "term {term}");
            // Scores must match pairwise (document ties may reorder equal
            // scores, so compare the score multiset).
            let got: Vec<f64> = outcome.results.iter().map(|r| r.1).collect();
            let want: Vec<f64> = reference.iter().map(|p| p.score).collect();
            for (g, w) in got.iter().zip(want.iter()) {
                assert!((g - w).abs() < 1e-9, "term {term}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn frequent_terms_are_satisfied_by_the_initial_response() {
        let f = fixture();
        let config = RetrievalConfig::for_k(10);
        let frequent = f.stats.terms_by_doc_freq()[0];
        let outcome = retrieve_topk(&f.index, frequent, &f.memberships, &config).unwrap();
        assert!(outcome.satisfied);
        assert!(
            outcome.requests <= 3,
            "a very frequent term should need few requests, got {}",
            outcome.requests
        );
    }

    #[test]
    fn rare_terms_need_more_requests_but_terminate() {
        let f = fixture();
        let config = RetrievalConfig::for_k(10);
        let order = f.stats.terms_by_doc_freq();
        let rare = *order.last().unwrap();
        let outcome = retrieve_topk(&f.index, rare, &f.memberships, &config).unwrap();
        // The rare term has fewer than k postings: the retrieval must stop
        // after exhausting the visible list without looping forever.
        assert!(!outcome.results.is_empty() || outcome.elements_transferred > 0);
        assert!(outcome.results.len() <= 10);
        if (f.stats.doc_freq(rare).unwrap() as usize) < 10 {
            assert!(!outcome.satisfied);
        }
    }

    #[test]
    fn doubling_growth_reduces_request_count_versus_constant() {
        let f = fixture();
        let order = f.stats.terms_by_doc_freq();
        // Pick a mid-frequency term so several follow-ups are needed.
        let term = order[order.len() / 3];
        let doubling = retrieve_topk(
            &f.index,
            term,
            &f.memberships,
            &RetrievalConfig {
                k: 10,
                initial_response: 2,
                growth: GrowthPolicy::Doubling,
            },
        )
        .unwrap();
        let constant = retrieve_topk(
            &f.index,
            term,
            &f.memberships,
            &RetrievalConfig {
                k: 10,
                initial_response: 2,
                growth: GrowthPolicy::Constant,
            },
        )
        .unwrap();
        assert!(doubling.requests <= constant.requests);
        // Both find the same results.
        assert_eq!(doubling.results, constant.results);
    }

    #[test]
    fn efficiency_and_overhead_metrics_are_consistent() {
        let f = fixture();
        let config = RetrievalConfig::for_k(10);
        let term = f.stats.terms_by_doc_freq()[5];
        let outcome = retrieve_topk(&f.index, term, &f.memberships, &config).unwrap();
        let eff = outcome.efficiency(10);
        let bo = outcome.bandwidth_overhead(10);
        assert!((0.0..=1.0).contains(&eff));
        assert!(bo >= 1.0 || !outcome.satisfied);
        if outcome.elements_transferred >= 10 {
            assert!((eff * bo - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn membership_restriction_limits_results() {
        let f = fixture();
        let config = RetrievalConfig::for_k(10);
        let term = f.stats.terms_by_doc_freq()[0];
        let only_g0: HashMap<GroupId, GroupKeys> = f
            .memberships
            .iter()
            .filter(|(g, _)| g.0 == 0)
            .map(|(g, k)| (*g, k.clone()))
            .collect();
        let all = retrieve_topk(&f.index, term, &f.memberships, &config).unwrap();
        let restricted = retrieve_topk(&f.index, term, &only_g0, &config).unwrap();
        assert!(restricted.elements_transferred <= all.elements_transferred + 20);
        // Every restricted result must come from a group-0 document.
        for &(doc, _) in &restricted.results {
            assert_eq!(f.corpus.doc(doc).unwrap().group, GroupId(0));
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let f = fixture();
        let term = f.stats.terms_by_doc_freq()[0];
        assert!(retrieve_topk(
            &f.index,
            term,
            &f.memberships,
            &RetrievalConfig {
                k: 0,
                initial_response: 5,
                growth: GrowthPolicy::Doubling
            }
        )
        .is_err());
        assert!(retrieve_topk(
            &f.index,
            term,
            &f.memberships,
            &RetrievalConfig {
                k: 5,
                initial_response: 0,
                growth: GrowthPolicy::Doubling
            }
        )
        .is_err());
        assert!(
            retrieve_multi_term(&f.index, &[], &f.memberships, &RetrievalConfig::for_k(5)).is_err()
        );
    }

    #[test]
    fn multi_term_queries_merge_single_term_results() {
        let f = fixture();
        let order = f.stats.terms_by_doc_freq();
        let terms = [order[0], order[1]];
        let config = RetrievalConfig::for_k(10);
        let (merged, per_term) =
            retrieve_multi_term(&f.index, &terms, &f.memberships, &config).unwrap();
        assert_eq!(per_term.len(), 2);
        assert!(merged.len() <= 10);
        assert!(merged.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn request_size_grows_as_configured() {
        let c = RetrievalConfig {
            k: 10,
            initial_response: 10,
            growth: GrowthPolicy::Doubling,
        };
        assert_eq!(c.request_size(0), 10);
        assert_eq!(c.request_size(1), 20);
        assert_eq!(c.request_size(2), 40);
        let c = RetrievalConfig {
            growth: GrowthPolicy::Constant,
            ..c
        };
        assert_eq!(c.request_size(5), 10);
        assert_eq!(RetrievalConfig::for_k(7).initial_response, 7);
        assert_eq!(GrowthPolicy::default(), GrowthPolicy::Doubling);
    }
}
