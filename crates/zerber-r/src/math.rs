//! Numeric helpers: error function, Gaussian and logistic CDFs, and summary
//! statistics used by the RSTF construction and its evaluation.
//!
//! No external math crates are used (DESIGN.md §5); `erf` uses the
//! Abramowitz–Stegun 7.1.26 rational approximation, whose absolute error is
//! below `1.5e-7` — far below the TRS variance thresholds discussed in
//! Section 5.1.3 of the paper (~2e-5).

/// Error function approximation (Abramowitz–Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    // erf is odd: erf(-x) = -erf(x).
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let poly = ((((A5 * t + A4) * t + A3) * t + A2) * t + A1) * t;
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal probability density function `φ(x)`.
pub fn std_normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Logistic sigmoid `1 / (1 + e^{-x})`, the kernel of Equation 8.
pub fn logistic(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        // Numerically stable branch for large negative x.
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Arithmetic mean of a slice (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population variance of a slice (0 for fewer than two values).
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64
}

/// Kolmogorov–Smirnov statistic of a sample against the uniform distribution
/// on `[0, 1]`: the maximum distance between the empirical CDF and `F(x)=x`.
///
/// Used as an alternative uniformity measure in the security experiments
/// (Section 6.2): a well-chosen σ drives this statistic towards the value
/// expected for genuinely uniform samples.
pub fn ks_uniform_statistic(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let cdf_hi = (i + 1) as f64 / n;
        let cdf_lo = i as f64 / n;
        d = d.max((cdf_hi - x).abs()).max((x - cdf_lo).abs());
    }
    d
}

/// Two-sample Kolmogorov–Smirnov statistic: the maximum distance between the
/// empirical CDFs of `a` and `b`.  Used by the adversary's distribution
/// fingerprinting attack.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return if a.is_empty() && b.is_empty() {
            0.0
        } else {
            1.0
        };
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    sb.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut ia, mut ib) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while ia < sa.len() && ib < sb.len() {
        if sa[ia] <= sb[ib] {
            ia += 1;
        } else {
            ib += 1;
        }
        d = d.max((ia as f64 / na - ib as f64 / nb).abs());
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_matches_reference_values() {
        // Reference values from tables of the error function.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204999),
            (1.0, 0.8427008),
            (2.0, 0.9953223),
            (-1.0, -0.8427008),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-6, "erf({x})");
        }
    }

    #[test]
    fn normal_cdf_is_monotone_and_symmetric() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((std_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((std_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        let mut prev = 0.0;
        for i in -40..=40 {
            let v = std_normal_cdf(f64::from(i) * 0.1);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn normal_pdf_peaks_at_zero() {
        assert!((std_normal_pdf(0.0) - 0.3989423).abs() < 1e-6);
        assert!(std_normal_pdf(0.0) > std_normal_pdf(0.5));
        assert!((std_normal_pdf(2.0) - std_normal_pdf(-2.0)).abs() < 1e-12);
    }

    #[test]
    fn logistic_is_a_cdf_shape() {
        assert!((logistic(0.0) - 0.5).abs() < 1e-12);
        assert!(logistic(10.0) > 0.9999);
        assert!(logistic(-10.0) < 0.0001);
        assert!((logistic(3.0) + logistic(-3.0) - 1.0).abs() < 1e-12);
        // Stable for extreme inputs.
        assert_eq!(logistic(-1000.0), 0.0);
        assert_eq!(logistic(1000.0), 1.0);
    }

    #[test]
    fn mean_and_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((variance(&[1.0, 2.0, 3.0]) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ks_uniform_detects_non_uniform_samples() {
        let uniform: Vec<f64> = (0..1000).map(|i| (f64::from(i) + 0.5) / 1000.0).collect();
        let clustered: Vec<f64> = (0..1000)
            .map(|i| 0.4 + 0.2 * f64::from(i) / 1000.0)
            .collect();
        assert!(ks_uniform_statistic(&uniform) < 0.01);
        assert!(ks_uniform_statistic(&clustered) > 0.3);
        assert_eq!(ks_uniform_statistic(&[]), 0.0);
    }

    #[test]
    fn ks_two_sample_distinguishes_distributions() {
        let a: Vec<f64> = (0..500).map(|i| f64::from(i) / 500.0).collect();
        let b: Vec<f64> = (0..500).map(|i| f64::from(i) / 500.0).collect();
        let c: Vec<f64> = (0..500).map(|i| (f64::from(i) / 500.0).powi(3)).collect();
        assert!(ks_two_sample(&a, &b) < 0.01);
        assert!(ks_two_sample(&a, &c) > 0.2);
        assert_eq!(ks_two_sample(&[], &[]), 0.0);
        assert_eq!(ks_two_sample(&a, &[]), 1.0);
    }
}
