//! Gaussian-sum model of a term's relevance score distribution (Equation 5).
//!
//! Every relevance score observed in the training set is treated as a sample
//! mean; the probability density of the term's scores over the whole corpus is
//! modelled as the average of Gaussian bells centred on the training values
//! (Figure 7 of the paper).  The bells' width is controlled by the σ
//! parameter; following the paper's convention (Section 5.1.3) σ acts as a
//! *rate*: a **smaller σ means a broader bell** (more general model), a larger
//! σ a narrower bell (risk of overfitting).

use serde::{Deserialize, Serialize};

use crate::error::ZerberRError;
use crate::math::std_normal_pdf;

/// Probability-density model `f(x) = (1/N) Σ_i N(x; μ_i, 1/σ)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianSum {
    mus: Vec<f64>,
    sigma: f64,
}

impl GaussianSum {
    /// Creates the model from training relevance scores and rate `sigma > 0`.
    pub fn new(training: &[f64], sigma: f64) -> Result<Self, ZerberRError> {
        if training.is_empty() {
            return Err(ZerberRError::InvalidParameter(
                "Gaussian sum needs at least one training value".into(),
            ));
        }
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(ZerberRError::InvalidParameter(format!(
                "sigma must be finite and positive, got {sigma}"
            )));
        }
        if training.iter().any(|v| !v.is_finite()) {
            return Err(ZerberRError::InvalidParameter(
                "training values must be finite".into(),
            ));
        }
        let mut mus = training.to_vec();
        mus.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Ok(GaussianSum { mus, sigma })
    }

    /// The training values (sorted ascending).
    pub fn training_values(&self) -> &[f64] {
        &self.mus
    }

    /// The rate parameter σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Number of training values `N`.
    pub fn len(&self) -> usize {
        self.mus.len()
    }

    /// Returns `true` if the model has no components (never after `new`).
    pub fn is_empty(&self) -> bool {
        self.mus.is_empty()
    }

    /// Evaluates the density at `x` (Equation 5 with scale `1/σ`).
    pub fn pdf(&self, x: f64) -> f64 {
        let n = self.mus.len() as f64;
        let sum: f64 = self
            .mus
            .iter()
            .map(|&mu| self.sigma * std_normal_pdf(self.sigma * (x - mu)))
            .sum();
        sum / n
    }

    /// Samples the density on a uniform grid of `points` values across
    /// `[lo, hi]`; used to print Figure 7.
    pub fn sample_curve(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        if points < 2 || hi <= lo {
            return Vec::new();
        }
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.pdf(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_inputs() {
        assert!(GaussianSum::new(&[], 1.0).is_err());
        assert!(GaussianSum::new(&[0.1], 0.0).is_err());
        assert!(GaussianSum::new(&[0.1], -2.0).is_err());
        assert!(GaussianSum::new(&[f64::NAN], 1.0).is_err());
        let g = GaussianSum::new(&[0.3, 0.1, 0.2], 5.0).unwrap();
        assert_eq!(g.training_values(), &[0.1, 0.2, 0.3]);
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        assert!((g.sigma() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn density_integrates_to_one() {
        let g = GaussianSum::new(&[0.2, 0.5, 0.8], 10.0).unwrap();
        // Trapezoidal integration over a wide interval.
        let n = 20_000;
        let (lo, hi) = (-2.0, 3.0);
        let h = (hi - lo) / n as f64;
        let mut integral = 0.0;
        for i in 0..n {
            let x0 = lo + h * i as f64;
            integral += 0.5 * (g.pdf(x0) + g.pdf(x0 + h)) * h;
        }
        assert!((integral - 1.0).abs() < 1e-3, "integral {integral}");
    }

    #[test]
    fn density_peaks_near_training_values() {
        let g = GaussianSum::new(&[0.2, 0.8], 30.0).unwrap();
        assert!(g.pdf(0.2) > g.pdf(0.5));
        assert!(g.pdf(0.8) > g.pdf(0.5));
        assert!(g.pdf(0.5) > g.pdf(2.0));
    }

    #[test]
    fn more_training_mass_means_higher_density_figure_7() {
        // Figure 7: regions with more training points have higher accumulated
        // density.
        let g = GaussianSum::new(&[0.30, 0.32, 0.34, 0.36, 0.90], 50.0).unwrap();
        assert!(g.pdf(0.33) > g.pdf(0.90));
    }

    #[test]
    fn smaller_sigma_gives_broader_bells() {
        let narrow = GaussianSum::new(&[0.5], 100.0).unwrap();
        let broad = GaussianSum::new(&[0.5], 2.0).unwrap();
        // Far from the training point the broad model keeps more mass.
        assert!(broad.pdf(1.5) > narrow.pdf(1.5));
        // At the training point the narrow model is higher.
        assert!(narrow.pdf(0.5) > broad.pdf(0.5));
    }

    #[test]
    fn sample_curve_has_requested_shape() {
        let g = GaussianSum::new(&[0.4], 10.0).unwrap();
        let curve = g.sample_curve(0.0, 1.0, 11);
        assert_eq!(curve.len(), 11);
        assert!((curve[0].0 - 0.0).abs() < 1e-12);
        assert!((curve[10].0 - 1.0).abs() < 1e-12);
        assert!(g.sample_curve(1.0, 0.0, 10).is_empty());
        assert!(g.sample_curve(0.0, 1.0, 1).is_empty());
    }
}
