//! Gaussian-sum model of a term's relevance score distribution (Equation 5).
//!
//! Every relevance score observed in the training set is treated as a sample
//! mean; the probability density of the term's scores over the whole corpus is
//! modelled as the average of Gaussian bells centred on the training values
//! (Figure 7 of the paper).  The bells' width is controlled by the σ
//! parameter; following the paper's convention (Section 5.1.3) σ acts as a
//! *rate*: a **smaller σ means a broader bell** (more general model), a larger
//! σ a narrower bell (risk of overfitting).
//!
//! Relevance scores (normalized TF, Figures 4–5) are heavily skewed: most
//! mass sits just above zero with a long sparse tail.  A single global
//! bandwidth cannot serve both regions — wide bells smear the dense head
//! (bias), narrow bells turn the tail into a staircase — and with a global
//! bandwidth the cross-validation curve of Figure 9 loses its U shape: the
//! control variance decreases monotonically towards the training-ECDF limit
//! and σ-selection runs off the end of the grid.  The bells therefore carry a
//! per-component scale following Abramson's square-root law: each width is
//! `c_i / σ` where `c_i ∝ sqrt(local spacing of the training values)`
//! (normalized so uniformly spread training data reproduces the constant
//! `1/σ` width).  σ remains the single rate knob that cross-validation tunes.

use serde::{Deserialize, Serialize};

use crate::error::ZerberRError;
use crate::math::std_normal_pdf;

/// Smallest / largest per-component scale, guarding duplicated training
/// values (zero local spacing) and degenerate one-sided gaps.
const MIN_COMPONENT_SCALE: f64 = 1e-3;
const MAX_COMPONENT_SCALE: f64 = 1e3;

/// Probability-density model `f(x) = (1/N) Σ_i N(x; μ_i, c_i/σ)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianSum {
    mus: Vec<f64>,
    // Derived from `mus` by `component_scales()`; if this type ever gains a
    // real wire format, recompute on load instead of trusting the payload
    // (a mismatched length would silently truncate the zips in `pdf`).
    scales: Vec<f64>,
    sigma: f64,
}

impl GaussianSum {
    /// Creates the model from training relevance scores and rate `sigma > 0`.
    pub fn new(training: &[f64], sigma: f64) -> Result<Self, ZerberRError> {
        if training.is_empty() {
            return Err(ZerberRError::InvalidParameter(
                "Gaussian sum needs at least one training value".into(),
            ));
        }
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(ZerberRError::InvalidParameter(format!(
                "sigma must be finite and positive, got {sigma}"
            )));
        }
        if training.iter().any(|v| !v.is_finite()) {
            return Err(ZerberRError::InvalidParameter(
                "training values must be finite".into(),
            ));
        }
        let mut mus = training.to_vec();
        mus.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let scales = component_scales(&mus);
        Ok(GaussianSum { mus, scales, sigma })
    }

    /// The training values (sorted ascending).
    pub fn training_values(&self) -> &[f64] {
        &self.mus
    }

    /// The per-component dimensionless scales `c_i`; bell `i` has width
    /// `c_i / σ`.  Same length and order as [`Self::training_values`].
    pub fn component_scales(&self) -> &[f64] {
        &self.scales
    }

    /// The rate parameter σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Number of training values `N`.
    pub fn len(&self) -> usize {
        self.mus.len()
    }

    /// Returns `true` if the model has no components (never after `new`).
    pub fn is_empty(&self) -> bool {
        self.mus.is_empty()
    }

    /// Evaluates the density at `x` (Equation 5 with per-component scale
    /// `c_i/σ`).
    pub fn pdf(&self, x: f64) -> f64 {
        debug_assert_eq!(self.mus.len(), self.scales.len());
        let n = self.mus.len() as f64;
        let sum: f64 = self
            .mus
            .iter()
            .zip(self.scales.iter())
            .map(|(&mu, &c)| {
                let rate = self.sigma / c;
                rate * std_normal_pdf(rate * (x - mu))
            })
            .sum();
        sum / n
    }

    /// Samples the density on a uniform grid of `points` values across
    /// `[lo, hi]`; used to print Figure 7.
    pub fn sample_curve(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        if points < 2 || hi <= lo {
            return Vec::new();
        }
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.pdf(x))
            })
            .collect()
    }
}

/// Abramson square-root-law scales from sorted training values.
///
/// The local spacing around `μ_i` is estimated over a `±k` neighbourhood
/// (`k ≈ √N`, clamped to the slice); `c_i = sqrt(N · spacing_i)` so that
/// uniformly spread values on a unit-length support give `c_i ≈ 1`,
/// reproducing the paper's constant `1/σ` bell width in the unskewed case.
fn component_scales(sorted_mus: &[f64]) -> Vec<f64> {
    let n = sorted_mus.len();
    if n < 2 {
        return vec![1.0; n];
    }
    let k = ((n as f64).sqrt().round() as usize).clamp(1, n - 1);
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(k);
            let hi = (i + k).min(n - 1);
            let spacing = (sorted_mus[hi] - sorted_mus[lo]) / (hi - lo) as f64;
            (spacing * n as f64)
                .sqrt()
                .clamp(MIN_COMPONENT_SCALE, MAX_COMPONENT_SCALE)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_inputs() {
        assert!(GaussianSum::new(&[], 1.0).is_err());
        assert!(GaussianSum::new(&[0.1], 0.0).is_err());
        assert!(GaussianSum::new(&[0.1], -2.0).is_err());
        assert!(GaussianSum::new(&[f64::NAN], 1.0).is_err());
        let g = GaussianSum::new(&[0.3, 0.1, 0.2], 5.0).unwrap();
        assert_eq!(g.training_values(), &[0.1, 0.2, 0.3]);
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        assert!((g.sigma() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn density_integrates_to_one() {
        let g = GaussianSum::new(&[0.2, 0.5, 0.8], 10.0).unwrap();
        // Trapezoidal integration over a wide interval.
        let n = 20_000;
        let (lo, hi) = (-2.0, 3.0);
        let h = (hi - lo) / n as f64;
        let mut integral = 0.0;
        for i in 0..n {
            let x0 = lo + h * i as f64;
            integral += 0.5 * (g.pdf(x0) + g.pdf(x0 + h)) * h;
        }
        assert!((integral - 1.0).abs() < 1e-3, "integral {integral}");
    }

    #[test]
    fn density_peaks_near_training_values() {
        let g = GaussianSum::new(&[0.2, 0.8], 30.0).unwrap();
        assert!(g.pdf(0.2) > g.pdf(0.5));
        assert!(g.pdf(0.8) > g.pdf(0.5));
        assert!(g.pdf(0.5) > g.pdf(2.0));
    }

    #[test]
    fn more_training_mass_means_higher_density_figure_7() {
        // Figure 7: regions with more training points have higher accumulated
        // density.
        let g = GaussianSum::new(&[0.30, 0.32, 0.34, 0.36, 0.90], 50.0).unwrap();
        assert!(g.pdf(0.33) > g.pdf(0.90));
    }

    #[test]
    fn smaller_sigma_gives_broader_bells() {
        let narrow = GaussianSum::new(&[0.5], 100.0).unwrap();
        let broad = GaussianSum::new(&[0.5], 2.0).unwrap();
        // Far from the training point the broad model keeps more mass.
        assert!(broad.pdf(1.5) > narrow.pdf(1.5));
        // At the training point the narrow model is higher.
        assert!(narrow.pdf(0.5) > broad.pdf(0.5));
    }

    #[test]
    fn component_scales_track_local_spacing() {
        // Dense head, sparse tail: head components must get smaller scales
        // (narrower bells) than tail components.
        let mut values: Vec<f64> = (0..80).map(|i| 0.01 + i as f64 * 1e-4).collect();
        values.extend((0..20).map(|i| 0.2 + i as f64 * 0.04));
        let g = GaussianSum::new(&values, 10.0).unwrap();
        let scales = g.component_scales();
        assert_eq!(scales.len(), values.len());
        assert!(
            scales[10] < scales[90],
            "head {} vs tail {}",
            scales[10],
            scales[90]
        );
        // Uniformly spread values on a unit support give scales near 1.
        let uniform: Vec<f64> = (0..200).map(|i| (i as f64 + 0.5) / 200.0).collect();
        let gu = GaussianSum::new(&uniform, 10.0).unwrap();
        for &c in gu.component_scales() {
            assert!((0.5..2.0).contains(&c), "uniform scale {c}");
        }
        // Duplicated training values stay finite and positive.
        let tied = GaussianSum::new(&[0.3; 50], 10.0).unwrap();
        for &c in tied.component_scales() {
            assert!(c >= MIN_COMPONENT_SCALE);
        }
    }

    #[test]
    fn sample_curve_has_requested_shape() {
        let g = GaussianSum::new(&[0.4], 10.0).unwrap();
        let curve = g.sample_curve(0.0, 1.0, 11);
        assert_eq!(curve.len(), 11);
        assert!((curve[0].0 - 0.0).abs() < 1e-12);
        assert!((curve[10].0 - 1.0).abs() < 1e-12);
        assert!(g.sample_curve(1.0, 0.0, 10).is_empty());
        assert!(g.sample_curve(0.0, 1.0, 1).is_empty());
    }
}
