//! The Relevance Score Transformation Function (RSTF), Sections 4.2 and 5.1.
//!
//! The RSTF of a term maps its raw relevance scores (normalized TF,
//! Equation 4) to Transformed Relevance Scores (TRS) such that
//!
//! 1. the output range `[0, 1]` is the same for every term,
//! 2. TRS values are (approximately) uniformly distributed over that range,
//! 3. the order of scores belonging to the same term is preserved.
//!
//! The function is the CDF of the Gaussian-sum density of Equation 5; the
//! paper evaluates it either exactly via the error function (Equations 6–7)
//! or with the logistic approximation of Equation 8.  Both kernels are
//! implemented; the logistic kernel is the default because it is what the
//! paper reports and it is cheaper to evaluate.

use serde::{Deserialize, Serialize};

use crate::density::GaussianSum;
use crate::error::ZerberRError;
use crate::math::{logistic, std_normal_cdf};

/// Which CDF kernel evaluates the RSTF.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RstfKernel {
    /// Equation 8: `RSTF(x) = (1/N) Σ_i 1 / (1 + e^{-σ(x-μ_i)})`.
    #[default]
    Logistic,
    /// Equations 6–7: `RSTF(x) = (1/N) Σ_i Φ(σ (x - μ_i))`.
    Erf,
}

/// A trained RSTF for one term.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rstf {
    density: GaussianSum,
    kernel: RstfKernel,
}

impl Rstf {
    /// Fits an RSTF from the term's training relevance scores.
    pub fn fit(training: &[f64], sigma: f64, kernel: RstfKernel) -> Result<Self, ZerberRError> {
        Ok(Rstf {
            density: GaussianSum::new(training, sigma)?,
            kernel,
        })
    }

    /// The σ (rate) parameter.
    pub fn sigma(&self) -> f64 {
        self.density.sigma()
    }

    /// The kernel in use.
    pub fn kernel(&self) -> RstfKernel {
        self.kernel
    }

    /// Number of training values.
    pub fn training_len(&self) -> usize {
        self.density.len()
    }

    /// The underlying density model (Equation 5).
    pub fn density(&self) -> &GaussianSum {
        &self.density
    }

    /// Transforms a raw relevance score into its TRS (Equation 8 / 6).
    pub fn transform(&self, x: f64) -> f64 {
        let sigma = self.density.sigma();
        let n = self.density.len() as f64;
        let sum: f64 = self
            .density
            .training_values()
            .iter()
            .zip(self.density.component_scales().iter())
            .map(|(&mu, &c)| {
                let z = sigma * (x - mu) / c;
                match self.kernel {
                    RstfKernel::Logistic => logistic(z),
                    RstfKernel::Erf => std_normal_cdf(z),
                }
            })
            .sum();
        (sum / n).clamp(0.0, 1.0)
    }

    /// Transforms a batch of scores.
    pub fn transform_all(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.transform(x)).collect()
    }

    /// Samples the RSTF curve on `[lo, hi]` (used to print Figure 8).
    pub fn sample_curve(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        if points < 2 || hi <= lo {
            return Vec::new();
        }
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.transform(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn training_scores(n: usize, seed: u64) -> Vec<f64> {
        // Skewed scores resembling normalized TF values: mostly small with a
        // heavier tail, in (0, 1].
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen();
                (u.powi(3) * 0.5 + 0.01).min(1.0)
            })
            .collect()
    }

    #[test]
    fn output_stays_in_unit_range() {
        let rstf = Rstf::fit(&training_scores(200, 1), 40.0, RstfKernel::Logistic).unwrap();
        for x in [-10.0, -0.5, 0.0, 0.01, 0.3, 0.999, 1.0, 5.0, 100.0] {
            let y = rstf.transform(x);
            assert!((0.0..=1.0).contains(&y), "transform({x}) = {y}");
        }
    }

    #[test]
    fn transformation_is_monotone_non_decreasing() {
        for kernel in [RstfKernel::Logistic, RstfKernel::Erf] {
            let rstf = Rstf::fit(&training_scores(100, 2), 60.0, kernel).unwrap();
            let mut prev = f64::MIN;
            for i in 0..=1000 {
                let x = f64::from(i) / 1000.0;
                let y = rstf.transform(x);
                assert!(y >= prev - 1e-12, "kernel {kernel:?} not monotone at {x}");
                prev = y;
            }
        }
    }

    #[test]
    fn order_of_distinct_scores_is_strictly_preserved() {
        // Property 3 of Section 4.2: the relative order of a term's posting
        // elements must survive the transformation.
        let rstf = Rstf::fit(&training_scores(150, 3), 80.0, RstfKernel::Logistic).unwrap();
        let scores = [0.02, 0.05, 0.1, 0.15, 0.3, 0.45];
        let trs = rstf.transform_all(&scores);
        for w in trs.windows(2) {
            assert!(w[1] > w[0], "strictly increasing on distinct inputs");
        }
    }

    #[test]
    fn logistic_and_erf_kernels_agree_roughly() {
        let train = training_scores(100, 4);
        let log = Rstf::fit(&train, 50.0, RstfKernel::Logistic).unwrap();
        let erf = Rstf::fit(&train, 50.0, RstfKernel::Erf).unwrap();
        for i in 0..=20 {
            let x = f64::from(i) * 0.05;
            assert!(
                (log.transform(x) - erf.transform(x)).abs() < 0.08,
                "kernels diverge at {x}"
            );
        }
    }

    #[test]
    fn training_values_map_to_spread_out_quantiles() {
        // Evaluating the CDF at the training values themselves should give
        // approximately their quantile positions — the essence of the
        // uniformization requirement.
        let train = training_scores(500, 5);
        let rstf = Rstf::fit(&train, 300.0, RstfKernel::Logistic).unwrap();
        let mut sorted = train.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q10 = rstf.transform(sorted[50]);
        let q50 = rstf.transform(sorted[250]);
        let q90 = rstf.transform(sorted[450]);
        assert!((q10 - 0.1).abs() < 0.08, "10% quantile mapped to {q10}");
        assert!((q50 - 0.5).abs() < 0.08, "50% quantile mapped to {q50}");
        assert!((q90 - 0.9).abs() < 0.08, "90% quantile mapped to {q90}");
    }

    #[test]
    fn extreme_scores_map_near_the_range_ends() {
        let rstf = Rstf::fit(&training_scores(100, 6), 100.0, RstfKernel::Erf).unwrap();
        assert!(rstf.transform(-1.0) < 0.01);
        assert!(rstf.transform(2.0) > 0.99);
    }

    #[test]
    fn curve_sampling_matches_direct_evaluation() {
        let rstf = Rstf::fit(&[0.2, 0.4, 0.6], 20.0, RstfKernel::Logistic).unwrap();
        let curve = rstf.sample_curve(0.0, 1.0, 5);
        assert_eq!(curve.len(), 5);
        for (x, y) in curve {
            assert!((rstf.transform(x) - y).abs() < 1e-12);
        }
        assert!(rstf.sample_curve(0.5, 0.5, 5).is_empty());
    }

    #[test]
    fn accessors_report_configuration() {
        let rstf = Rstf::fit(&[0.1, 0.2], 7.5, RstfKernel::Erf).unwrap();
        assert_eq!(rstf.training_len(), 2);
        assert_eq!(rstf.kernel(), RstfKernel::Erf);
        assert!((rstf.sigma() - 7.5).abs() < 1e-12);
        assert_eq!(rstf.density().len(), 2);
        assert_eq!(RstfKernel::default(), RstfKernel::Logistic);
    }
}
