//! # Zerber+R — top-k retrieval from a confidential index
//!
//! This crate is the paper's primary contribution: a ranking model that lets
//! an **untrusted** index server answer top-k queries over an r-confidential
//! merged inverted index without learning anything term-specific from the
//! ranking information it stores.
//!
//! The pipeline (Section 5 of the paper):
//!
//! 1. **Offline pre-computing phase** — from a training sample of documents,
//!    fit one [Relevance Score Transformation Function](rstf::Rstf) per term:
//!    the CDF of a [Gaussian-sum density](density::GaussianSum) over the
//!    term's observed relevance scores (Equations 5–8), with the σ parameter
//!    chosen by [cross-validation](sigma::cross_validate) so that transformed
//!    scores are as uniform as possible (Figure 9).  [`train::RstfModel`]
//!    packages this per-term table and the random fallback for unseen terms.
//! 2. **Online insertion** — a client inserts a posting element by sealing
//!    `(term, doc, tf, |d|)` under its group key, computing the TRS with the
//!    published RSTF and sending both to the server, which binary-searches the
//!    position in the [ordered merged list](index::OrderedIndex).
//! 3. **Query answering** — the server returns the top-`b` accessible
//!    elements of the requested merged list by TRS; the client decrypts,
//!    filters by the queried term and issues doubling follow-up requests until
//!    it holds `k` results ([`query::retrieve_topk`]).
//!
//! ```
//! use std::collections::HashMap;
//! use zerber_base::{BfmMerge, ConfidentialityParam, MergeScheme};
//! use zerber_corpus::{sample_split, CorpusBuilder, CorpusStats, Document, GroupId, SplitConfig};
//! use zerber_crypto::MasterKey;
//! use zerber_r::{OrderedIndex, RetrievalConfig, RstfConfig, RstfModel, retrieve_topk};
//!
//! // A toy corpus shared by one collaboration group.
//! let mut builder = CorpusBuilder::new();
//! for i in 0..40 {
//!     builder
//!         .add_document(Document::new(
//!             format!("doc-{i}.txt"),
//!             GroupId(0),
//!             format!("imclone report {} and process control {}", "x ".repeat(i % 7), i),
//!         ))
//!         .unwrap();
//! }
//! let corpus = builder.build();
//! let stats = CorpusStats::compute(&corpus);
//!
//! // Offline phase: train the RSTF model and build the ordered index.
//! let split = sample_split(&corpus, SplitConfig::default()).unwrap();
//! let model = RstfModel::train(&corpus, &split, &RstfConfig::default()).unwrap();
//! let plan = BfmMerge.plan(&stats, ConfidentialityParam::new(4.0).unwrap()).unwrap();
//! let master = MasterKey::new([7u8; 32]);
//! let index = OrderedIndex::build(&corpus, plan, &model, &master, 42).unwrap();
//!
//! // Online phase: a group member retrieves the top-5 documents for a term.
//! let term = corpus.dictionary().get("imclone").unwrap();
//! let memberships: HashMap<_, _> = [(GroupId(0), master.group_keys(0))].into();
//! let outcome = retrieve_topk(&index, term, &memberships, &RetrievalConfig::for_k(5)).unwrap();
//! assert!(outcome.results.len() <= 5);
//! assert!(!outcome.results.is_empty());
//! ```

pub mod density;
pub mod error;
pub mod index;
pub mod math;
pub mod publish;
pub mod query;
pub mod rstf;
pub mod sigma;
pub mod train;

pub use density::GaussianSum;
pub use error::ZerberRError;
pub use index::{OrderedElement, OrderedIndex, TRS_BYTES};
pub use publish::{load_model, publish_model};
pub use query::{
    retrieve_multi_term, retrieve_topk, GrowthPolicy, RetrievalConfig, RetrievalOutcome,
};
pub use rstf::{Rstf, RstfKernel};
pub use sigma::{
    cross_validate, default_sigma_grid, uniformity_variance, SigmaPoint, SigmaSelection,
};
pub use train::{RstfConfig, RstfModel, SigmaStrategy};
