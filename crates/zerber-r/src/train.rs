//! Offline pre-computing phase: fitting one RSTF per term (Section 5).
//!
//! "In the pre-computing phase, Zerber+R initializes and publishes the RSTF
//! for each term in the training document set, such that in the online
//! insertion phase this function can be used by an inserting client."
//!
//! Terms that never occur in the training documents are assumed rare and are
//! assigned a *random* TRS (Section 5.1.1); the randomness is derived
//! deterministically from the `(term, document)` pair so repeated index runs
//! are reproducible and the same posting element always receives the same
//! TRS.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};
use zerber_corpus::{Corpus, DocId, TermId, TrainControlSplit};
use zerber_crypto::Sha256;

use crate::error::ZerberRError;
use crate::rstf::{Rstf, RstfKernel};
use crate::sigma::{cross_validate, default_sigma_grid, SigmaSelection};

/// How σ is chosen during training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SigmaStrategy {
    /// Use the same fixed σ for every term (cheapest; useful in benches).
    Fixed(f64),
    /// Run one cross-validation over the pooled relevance scores of the most
    /// frequent terms and use the winning σ for every term (the default; a
    /// practical middle ground the paper's "future work" on direct σ
    /// selection hints at).
    GlobalCrossValidation {
        /// How many of the most frequent terms contribute scores to the pool.
        pool_terms: usize,
    },
    /// Cross-validate σ separately for every term with at least
    /// `min_scores` training values; other terms fall back to the global
    /// choice.  This matches the per-term procedure of Section 5.1.3 and is
    /// the most expensive option.
    PerTerm {
        /// Minimum number of training scores required for a per-term sweep.
        min_scores: usize,
    },
}

impl Default for SigmaStrategy {
    fn default() -> Self {
        SigmaStrategy::GlobalCrossValidation { pool_terms: 64 }
    }
}

/// Configuration of the training phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RstfConfig {
    /// CDF kernel (Equation 8 logistic by default).
    pub kernel: RstfKernel,
    /// σ selection strategy.
    pub sigma: SigmaStrategy,
    /// Candidate grid for cross-validation (defaults to
    /// [`default_sigma_grid`]).
    pub sigma_grid: Vec<f64>,
    /// Seed for the random TRS assigned to terms unseen during training.
    pub unseen_seed: u64,
}

impl Default for RstfConfig {
    fn default() -> Self {
        RstfConfig {
            kernel: RstfKernel::Logistic,
            sigma: SigmaStrategy::default(),
            sigma_grid: default_sigma_grid(),
            unseen_seed: 0x2e5b,
        }
    }
}

/// The published per-term transformation model.
#[derive(Debug, Clone)]
pub struct RstfModel {
    per_term: HashMap<TermId, Rstf>,
    kernel: RstfKernel,
    global_sigma: f64,
    global_selection: Option<SigmaSelection>,
    unseen_seed: u64,
}

impl RstfModel {
    /// Trains the model from the corpus and a training/control split.
    pub fn train(
        corpus: &Corpus,
        split: &TrainControlSplit,
        config: &RstfConfig,
    ) -> Result<Self, ZerberRError> {
        if split.training.is_empty() {
            return Err(ZerberRError::InvalidSigmaSearch(
                "the training split contains no documents".into(),
            ));
        }
        let training_docs: HashSet<DocId> = split.training.iter().copied().collect();
        let control_docs: HashSet<DocId> = split.control.iter().copied().collect();

        // Collect per-term relevance scores from the training and control docs.
        let mut train_scores: HashMap<TermId, Vec<f64>> = HashMap::new();
        let mut control_scores: HashMap<TermId, Vec<f64>> = HashMap::new();
        for (doc_id, doc) in corpus.docs() {
            let bucket = if training_docs.contains(&doc_id) {
                Some(&mut train_scores)
            } else if control_docs.contains(&doc_id) {
                Some(&mut control_scores)
            } else {
                None
            };
            if let Some(map) = bucket {
                for &(term, tf) in &doc.term_counts {
                    let rel = if doc.length == 0 {
                        0.0
                    } else {
                        f64::from(tf) / f64::from(doc.length)
                    };
                    map.entry(term).or_default().push(rel);
                }
            }
        }

        // Choose the global σ.
        let (global_sigma, global_selection) = match &config.sigma {
            SigmaStrategy::Fixed(sigma) => {
                if !(sigma.is_finite() && *sigma > 0.0) {
                    return Err(ZerberRError::InvalidParameter(format!(
                        "fixed sigma must be positive, got {sigma}"
                    )));
                }
                (*sigma, None)
            }
            SigmaStrategy::GlobalCrossValidation { .. } | SigmaStrategy::PerTerm { .. } => {
                let pool_terms = match &config.sigma {
                    SigmaStrategy::GlobalCrossValidation { pool_terms } => *pool_terms,
                    _ => 64,
                };
                let selection = Self::global_cross_validation(
                    &train_scores,
                    &control_scores,
                    pool_terms.max(1),
                    &config.sigma_grid,
                    config.kernel,
                )?;
                (selection.best_sigma, Some(selection))
            }
        };

        // Fit per-term RSTFs.
        let mut per_term = HashMap::with_capacity(train_scores.len());
        for (term, scores) in &train_scores {
            let sigma = match &config.sigma {
                SigmaStrategy::PerTerm { min_scores } => {
                    let control = control_scores.get(term);
                    match control {
                        Some(ctrl) if scores.len() >= *min_scores && !ctrl.is_empty() => {
                            cross_validate(scores, ctrl, &config.sigma_grid, config.kernel)
                                .map(|s| s.best_sigma)
                                .unwrap_or(global_sigma)
                        }
                        _ => global_sigma,
                    }
                }
                _ => global_sigma,
            };
            per_term.insert(*term, Rstf::fit(scores, sigma, config.kernel)?);
        }
        Ok(RstfModel {
            per_term,
            kernel: config.kernel,
            global_sigma,
            global_selection,
            unseen_seed: config.unseen_seed,
        })
    }

    fn global_cross_validation(
        train_scores: &HashMap<TermId, Vec<f64>>,
        control_scores: &HashMap<TermId, Vec<f64>>,
        pool_terms: usize,
        grid: &[f64],
        kernel: RstfKernel,
    ) -> Result<SigmaSelection, ZerberRError> {
        // Pool the most frequent terms (by training score count) that also
        // appear in the control set.
        let mut candidates: Vec<(&TermId, usize)> = train_scores
            .iter()
            .filter(|(t, _)| control_scores.contains_key(t))
            .map(|(t, v)| (t, v.len()))
            .collect();
        candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        candidates.truncate(pool_terms);
        if candidates.is_empty() {
            // No term appears in both splits (tiny corpora): fall back to the
            // most frequent training term validated against itself.
            let mut by_count: Vec<(&TermId, usize)> =
                train_scores.iter().map(|(t, v)| (t, v.len())).collect();
            by_count.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
            let Some((term, _)) = by_count.first() else {
                return Err(ZerberRError::InvalidSigmaSearch(
                    "no training scores available".into(),
                ));
            };
            let scores = &train_scores[term];
            return cross_validate(scores, scores, grid, kernel);
        }
        // Average the per-term variance curves, weighting each term by its
        // control-score count (inverse-variance weighting): a uniformity
        // variance measured on a handful of control values is mostly noise,
        // and giving such terms the same weight as well-measured frequent
        // terms biases the pooled minimum towards under-smoothed σ.
        let mut sums = vec![0.0f64; grid.len()];
        let mut total_weight = 0.0f64;
        for (term, _) in &candidates {
            let train = &train_scores[*term];
            let control = &control_scores[*term];
            let sel = cross_validate(train, control, grid, kernel)?;
            let weight = control.len() as f64;
            for (i, p) in sel.curve.iter().enumerate() {
                sums[i] += weight * p.variance;
            }
            total_weight += weight;
        }
        let total_weight = if total_weight > 0.0 {
            total_weight
        } else {
            1.0
        };
        let curve: Vec<crate::sigma::SigmaPoint> = grid
            .iter()
            .zip(sums.iter())
            .map(|(&sigma, &s)| crate::sigma::SigmaPoint {
                sigma,
                variance: s / total_weight,
            })
            .collect();
        let best = curve
            .iter()
            .copied()
            .min_by(|a, b| {
                a.variance
                    .partial_cmp(&b.variance)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .ok_or_else(|| ZerberRError::InvalidSigmaSearch("empty sigma grid".into()))?;
        Ok(SigmaSelection {
            best_sigma: best.sigma,
            best_variance: best.variance,
            curve,
        })
    }

    /// Reassembles a model from its parts (used by [`crate::publish`] when
    /// loading a previously published model).
    pub fn from_parts(
        per_term: HashMap<TermId, Rstf>,
        kernel: RstfKernel,
        global_sigma: f64,
        unseen_seed: u64,
    ) -> Self {
        RstfModel {
            per_term,
            kernel,
            global_sigma,
            global_selection: None,
            unseen_seed,
        }
    }

    /// Iterates over `(TermId, &Rstf)` pairs in unspecified order.
    pub fn terms(&self) -> impl Iterator<Item = (TermId, &Rstf)> {
        self.per_term.iter().map(|(&t, r)| (t, r))
    }

    /// The seed used to derive random TRS values for unseen terms.
    pub fn unseen_seed(&self) -> u64 {
        self.unseen_seed
    }

    /// The kernel the model was trained with.
    pub fn kernel(&self) -> RstfKernel {
        self.kernel
    }

    /// The globally selected σ.
    pub fn global_sigma(&self) -> f64 {
        self.global_sigma
    }

    /// The global cross-validation sweep, if one was run (the data of
    /// Figure 9).
    pub fn global_selection(&self) -> Option<&SigmaSelection> {
        self.global_selection.as_ref()
    }

    /// Number of terms with a fitted RSTF.
    pub fn num_trained_terms(&self) -> usize {
        self.per_term.len()
    }

    /// The RSTF of a term, if it was seen during training.
    pub fn rstf(&self, term: TermId) -> Option<&Rstf> {
        self.per_term.get(&term)
    }

    /// Transforms a raw relevance score of `(term, doc)` into its TRS.
    ///
    /// Terms unseen during training receive a deterministic pseudo-random TRS
    /// (uniform in `[0, 1]`), as prescribed in Section 5.1.1.
    pub fn transform(&self, term: TermId, doc: DocId, raw_score: f64) -> f64 {
        match self.per_term.get(&term) {
            Some(rstf) => rstf.transform(raw_score),
            None => self.random_trs(term, doc),
        }
    }

    /// The deterministic fallback TRS for unseen terms.
    pub fn random_trs(&self, term: TermId, doc: DocId) -> f64 {
        let mut data = [0u8; 16];
        data[0..8].copy_from_slice(&self.unseen_seed.to_le_bytes());
        data[8..12].copy_from_slice(&term.0.to_le_bytes());
        data[12..16].copy_from_slice(&doc.0.to_le_bytes());
        let digest = Sha256::digest(&data);
        // analyze::allow(panic): SHA-256 digests are exactly 32 bytes, so the 8-byte prefix always converts
        let v = u64::from_le_bytes(digest[..8].try_into().expect("8 bytes"));
        // Map to [0, 1) with 53-bit precision.
        (v >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sigma::uniformity_variance;
    use zerber_corpus::{
        sample_split, CorpusGenerator, CustomProfile, DatasetProfile, SplitConfig, SynthConfig,
    };

    fn corpus() -> Corpus {
        let config = SynthConfig {
            profile: DatasetProfile::Custom(CustomProfile {
                num_docs: 400,
                num_groups: 4,
                vocab_size: 800,
                general_vocab_fraction: 0.5,
                topic_mix: 0.3,
                zipf_exponent: 1.0,
                doc_length_median: 80.0,
                doc_length_sigma: 0.7,
                min_doc_length: 20,
                max_doc_length: 500,
            }),
            scale: 1.0,
            seed: 500,
        };
        CorpusGenerator::new(config).generate().unwrap()
    }

    fn split(corpus: &Corpus) -> TrainControlSplit {
        sample_split(corpus, SplitConfig::default()).unwrap()
    }

    #[test]
    fn training_produces_rstfs_for_training_terms() {
        let c = corpus();
        let s = split(&c);
        let model = RstfModel::train(&c, &s, &RstfConfig::default()).unwrap();
        assert!(model.num_trained_terms() > 50);
        assert!(model.global_sigma() > 0.0);
        assert!(model.global_selection().is_some());
        assert_eq!(model.kernel(), RstfKernel::Logistic);
    }

    #[test]
    fn fixed_sigma_strategy_skips_cross_validation() {
        let c = corpus();
        let s = split(&c);
        let config = RstfConfig {
            sigma: SigmaStrategy::Fixed(120.0),
            ..RstfConfig::default()
        };
        let model = RstfModel::train(&c, &s, &config).unwrap();
        assert!((model.global_sigma() - 120.0).abs() < 1e-12);
        assert!(model.global_selection().is_none());
        let bad = RstfConfig {
            sigma: SigmaStrategy::Fixed(0.0),
            ..RstfConfig::default()
        };
        assert!(RstfModel::train(&c, &s, &bad).is_err());
    }

    #[test]
    fn transform_is_uniform_on_unseen_documents() {
        // The core claim of the paper: TRS values of a term over the corpus
        // (including documents outside the training sample) are close to
        // uniform, so the index server cannot tell terms apart.
        let c = corpus();
        let s = split(&c);
        let model = RstfModel::train(&c, &s, &RstfConfig::default()).unwrap();
        let stats = zerber_corpus::CorpusStats::compute(&c);
        let frequent = stats.terms_by_doc_freq()[0];
        let term_stats = stats.term(frequent).unwrap();
        let trs: Vec<f64> = term_stats
            .postings
            .iter()
            .map(|&(doc, _, rel)| model.transform(frequent, doc, rel))
            .collect();
        let var = uniformity_variance(&trs);
        assert!(
            var < 5e-3,
            "TRS of a frequent term should be close to uniform (variance {var})"
        );
    }

    #[test]
    fn unseen_terms_get_deterministic_random_trs() {
        let c = corpus();
        let s = split(&c);
        let model = RstfModel::train(&c, &s, &RstfConfig::default()).unwrap();
        let unseen = TermId(999_999);
        let a = model.transform(unseen, DocId(1), 0.5);
        let b = model.transform(unseen, DocId(1), 0.9);
        let c2 = model.transform(unseen, DocId(2), 0.5);
        assert!((0.0..1.0).contains(&a));
        assert_eq!(a, b, "fallback ignores the raw score");
        assert_ne!(a, c2, "different documents get different TRS");
        assert!(model.rstf(unseen).is_none());
    }

    #[test]
    fn per_term_strategy_trains_successfully() {
        let c = corpus();
        let s = split(&c);
        let config = RstfConfig {
            sigma: SigmaStrategy::PerTerm { min_scores: 30 },
            sigma_grid: vec![10.0, 40.0, 160.0, 640.0],
            ..RstfConfig::default()
        };
        let model = RstfModel::train(&c, &s, &config).unwrap();
        assert!(model.num_trained_terms() > 0);
    }

    #[test]
    fn empty_training_split_is_rejected() {
        let c = corpus();
        let empty = TrainControlSplit {
            training: vec![],
            control: vec![],
            remainder: c.doc_ids().collect(),
        };
        assert!(RstfModel::train(&c, &empty, &RstfConfig::default()).is_err());
    }

    #[test]
    fn order_preservation_survives_training() {
        let c = corpus();
        let s = split(&c);
        let model = RstfModel::train(&c, &s, &RstfConfig::default()).unwrap();
        let stats = zerber_corpus::CorpusStats::compute(&c);
        let term = stats.terms_by_doc_freq()[1];
        let ts = stats.term(term).unwrap();
        if model.rstf(term).is_some() {
            let mut pairs: Vec<(f64, f64)> = ts
                .postings
                .iter()
                .map(|&(doc, _, rel)| (rel, model.transform(term, doc, rel)))
                .collect();
            pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in pairs.windows(2) {
                assert!(w[1].1 >= w[0].1, "TRS must preserve raw-score order");
            }
        }
    }
}
