//! Error type for the Zerber+R core crate.

use std::fmt;

/// Errors produced by RSTF construction and the ordered confidential index.
#[derive(Debug, Clone, PartialEq)]
pub enum ZerberRError {
    /// An RSTF was requested for a term with no training data and no fallback.
    NoTrainingData(u32),
    /// σ selection was attempted with an empty candidate grid or empty
    /// control set.
    InvalidSigmaSearch(String),
    /// An invalid parameter was supplied (k = 0, b = 0, σ <= 0, ...).
    InvalidParameter(String),
    /// The requested merged posting list does not exist.
    UnknownList(u64),
    /// An error bubbled up from the Zerber substrate.
    Base(String),
    /// An error bubbled up from the corpus substrate.
    Corpus(String),
}

impl fmt::Display for ZerberRError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZerberRError::NoTrainingData(t) => {
                write!(f, "no training data available for term {t}")
            }
            ZerberRError::InvalidSigmaSearch(msg) => write!(f, "invalid sigma search: {msg}"),
            ZerberRError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            ZerberRError::UnknownList(id) => write!(f, "unknown merged posting list {id}"),
            ZerberRError::Base(msg) => write!(f, "zerber substrate error: {msg}"),
            ZerberRError::Corpus(msg) => write!(f, "corpus error: {msg}"),
        }
    }
}

impl std::error::Error for ZerberRError {}

impl From<zerber_base::ZerberError> for ZerberRError {
    fn from(e: zerber_base::ZerberError) -> Self {
        ZerberRError::Base(e.to_string())
    }
}

impl From<zerber_corpus::CorpusError> for ZerberRError {
    fn from(e: zerber_corpus::CorpusError) -> Self {
        ZerberRError::Corpus(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ZerberRError::NoTrainingData(3).to_string().contains('3'));
        assert!(ZerberRError::UnknownList(8).to_string().contains('8'));
        assert!(ZerberRError::InvalidParameter("b must be > 0".into())
            .to_string()
            .contains("b must be > 0"));
    }

    #[test]
    fn conversions_work() {
        let e: ZerberRError = zerber_base::ZerberError::UnknownList(2).into();
        assert!(matches!(e, ZerberRError::Base(_)));
        let e: ZerberRError = zerber_corpus::CorpusError::UnknownDocument(2).into();
        assert!(matches!(e, ZerberRError::Corpus(_)));
    }
}
