//! σ selection by cross-validation (Section 5.1.3, Figure 9).
//!
//! The σ (rate) parameter controls how general the RSTF is: too small and all
//! TRS values cluster around 0.5 (underfitting); too large and the RSTF
//! becomes a staircase over the training points, so control values collapse
//! onto a few discrete levels (overfitting).  The paper selects σ by
//! minimizing, over a candidate grid, the deviation of the control-set TRS
//! distribution from the uniform distribution; the resulting curve is
//! U-shaped (Figure 9) and a good σ reaches a variance below `2e-5`.

use serde::{Deserialize, Serialize};

use crate::error::ZerberRError;
use crate::rstf::{Rstf, RstfKernel};

/// Deviation of a TRS sample from uniformity.
///
/// The sorted sample is compared against the expected uniform order
/// statistics `i / (n + 1)`; the measure is the mean squared deviation.  A
/// perfectly uniform sample scores 0; the paper's "variance with respect to a
/// uniform distribution".
pub fn uniformity_variance(trs: &[f64]) -> f64 {
    if trs.is_empty() {
        return 0.0;
    }
    let mut sorted = trs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len();
    let mut acc = 0.0;
    for (i, &v) in sorted.iter().enumerate() {
        let expected = (i + 1) as f64 / (n + 1) as f64;
        acc += (v - expected).powi(2);
    }
    acc / n as f64
}

/// One point of the σ sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SigmaPoint {
    /// Candidate σ.
    pub sigma: f64,
    /// Uniformity variance of the control-set TRS values under this σ.
    pub variance: f64,
}

/// Result of cross-validating σ.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SigmaSelection {
    /// The σ with the smallest control-set variance.
    pub best_sigma: f64,
    /// The variance achieved by `best_sigma`.
    pub best_variance: f64,
    /// The full sweep, in grid order (this is the series of Figure 9).
    pub curve: Vec<SigmaPoint>,
}

/// Default logarithmic candidate grid.
///
/// Relevance scores live in `(0, 1]` and typical per-term spreads are on the
/// order of `10^-2`..`10^-1`, so useful rates range from a few units to a few
/// thousand.
pub fn default_sigma_grid() -> Vec<f64> {
    let mut grid = Vec::new();
    let mut v: f64 = 1.0;
    while v <= 50_000.0 {
        grid.push(v);
        v *= 1.7;
    }
    grid
}

/// Sweeps `sigmas`, fitting an RSTF on `training` and measuring TRS
/// uniformity on `control`; returns the best σ and the whole curve.
pub fn cross_validate(
    training: &[f64],
    control: &[f64],
    sigmas: &[f64],
    kernel: RstfKernel,
) -> Result<SigmaSelection, ZerberRError> {
    if training.is_empty() {
        return Err(ZerberRError::InvalidSigmaSearch(
            "empty training set".into(),
        ));
    }
    if control.is_empty() {
        return Err(ZerberRError::InvalidSigmaSearch("empty control set".into()));
    }
    if sigmas.is_empty() {
        return Err(ZerberRError::InvalidSigmaSearch("empty sigma grid".into()));
    }
    let mut curve = Vec::with_capacity(sigmas.len());
    let mut best: Option<SigmaPoint> = None;
    for &sigma in sigmas {
        let rstf = Rstf::fit(training, sigma, kernel)?;
        let trs = rstf.transform_all(control);
        let variance = uniformity_variance(&trs);
        let point = SigmaPoint { sigma, variance };
        curve.push(point);
        let better = match best {
            None => true,
            Some(b) => variance < b.variance,
        };
        if better {
            best = Some(point);
        }
    }
    let best = best.ok_or_else(|| ZerberRError::InvalidSigmaSearch("empty sigma grid".into()))?;
    Ok(SigmaSelection {
        best_sigma: best.sigma,
        best_variance: best.variance,
        curve,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn skewed_scores(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen();
                u.powi(3) * 0.4 + 0.005
            })
            .collect()
    }

    #[test]
    fn uniform_sample_has_tiny_variance() {
        let uniform: Vec<f64> = (1..=999).map(|i| f64::from(i) / 1000.0).collect();
        assert!(uniformity_variance(&uniform) < 1e-6);
        assert_eq!(uniformity_variance(&[]), 0.0);
    }

    #[test]
    fn clustered_sample_has_large_variance() {
        let clustered = vec![0.5; 100];
        assert!(uniformity_variance(&clustered) > 0.05);
        let half = vec![0.1; 50]
            .into_iter()
            .chain(vec![0.9; 50])
            .collect::<Vec<_>>();
        assert!(uniformity_variance(&half) > 0.02);
    }

    #[test]
    fn cross_validation_finds_an_interior_optimum() {
        // Figure 9: the variance curve is U-shaped, so the best σ should not
        // be at either end of a sufficiently wide grid.
        let train = skewed_scores(400, 10);
        let control = skewed_scores(200, 11);
        let grid = default_sigma_grid();
        let sel = cross_validate(&train, &control, &grid, RstfKernel::Logistic).unwrap();
        assert!(sel.best_sigma > grid[0]);
        assert!(sel.best_sigma < *grid.last().unwrap());
        assert_eq!(sel.curve.len(), grid.len());
        // Ends of the curve should be worse than the optimum.
        assert!(sel.curve.first().unwrap().variance > sel.best_variance);
        assert!(sel.curve.last().unwrap().variance > sel.best_variance);
    }

    #[test]
    fn a_good_sigma_reaches_paper_level_uniformity() {
        // Section 5.1.3: "a good selection of σ provides a variance of
        // smaller than 0.00002".  The attainable floor of our order-statistic
        // measure scales with the control-set size: even a *perfectly*
        // uniform sample of n values has an expected variance of about
        // 1/(6(n+2)).  A good σ should land within a small factor of that
        // floor (the paper's 2e-5 corresponds to its larger control sets).
        let train = skewed_scores(2_000, 12);
        let control = skewed_scores(800, 13);
        let sel = cross_validate(
            &train,
            &control,
            &default_sigma_grid(),
            RstfKernel::Logistic,
        )
        .unwrap();
        let floor = 1.0 / (6.0 * (control.len() as f64 + 2.0));
        assert!(
            sel.best_variance < 3.0 * floor,
            "best variance {} should be within 3x the uniform floor {floor}",
            sel.best_variance
        );
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        let data = skewed_scores(10, 1);
        assert!(cross_validate(&[], &data, &[1.0], RstfKernel::Logistic).is_err());
        assert!(cross_validate(&data, &[], &[1.0], RstfKernel::Logistic).is_err());
        assert!(cross_validate(&data, &data, &[], RstfKernel::Logistic).is_err());
    }

    #[test]
    fn erf_kernel_also_selects_a_reasonable_sigma() {
        let train = skewed_scores(300, 20);
        let control = skewed_scores(150, 21);
        let sel = cross_validate(&train, &control, &default_sigma_grid(), RstfKernel::Erf).unwrap();
        assert!(sel.best_variance < 0.01);
    }

    #[test]
    fn default_grid_is_increasing_and_positive() {
        let grid = default_sigma_grid();
        assert!(grid.len() > 10);
        assert!(grid[0] >= 1.0);
        assert!(grid.windows(2).all(|w| w[1] > w[0]));
    }
}
