//! Publishing and loading the RSTF model.
//!
//! Section 5 of the paper: "Zerber+R initializes and **publishes** the RSTF
//! for each term in the training document set, such that in the online
//! insertion phase this function can be used by an inserting client."  The
//! model therefore needs a stable serialized form that the index
//! administrator can hand to every group member (and that can live next to
//! the index configuration).
//!
//! The format is a small self-describing binary layout (magic, version,
//! varint-length-prefixed records); it does not depend on any serialization
//! crate and is covered by round-trip and corruption tests.

use std::collections::HashMap;

use zerber_corpus::TermId;

use crate::error::ZerberRError;
use crate::rstf::{Rstf, RstfKernel};
use crate::train::RstfModel;

/// Magic bytes identifying a published model file.
pub const MAGIC: &[u8; 8] = b"ZERBERR\x01";
/// Current format version.
pub const VERSION: u16 = 1;

fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, ZerberRError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| ZerberRError::InvalidParameter("truncated model data".into()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(ZerberRError::InvalidParameter(
                "varint overflow in model data".into(),
            ));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

fn write_f64(out: &mut Vec<u8>, value: f64) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn read_f64(buf: &[u8], pos: &mut usize) -> Result<f64, ZerberRError> {
    let end = *pos + 8;
    let bytes = buf
        .get(*pos..end)
        .ok_or_else(|| ZerberRError::InvalidParameter("truncated model data".into()))?;
    *pos = end;
    let bytes = <[u8; 8]>::try_from(bytes)
        .map_err(|_| ZerberRError::InvalidParameter("truncated model data".into()))?;
    Ok(f64::from_le_bytes(bytes))
}

fn kernel_tag(kernel: RstfKernel) -> u8 {
    match kernel {
        RstfKernel::Logistic => 0,
        RstfKernel::Erf => 1,
    }
}

fn kernel_from_tag(tag: u8) -> Result<RstfKernel, ZerberRError> {
    match tag {
        0 => Ok(RstfKernel::Logistic),
        1 => Ok(RstfKernel::Erf),
        other => Err(ZerberRError::InvalidParameter(format!(
            "unknown RSTF kernel tag {other}"
        ))),
    }
}

/// Serializes a trained model into the published byte format.
pub fn publish_model(model: &RstfModel) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(kernel_tag(model.kernel()));
    write_f64(&mut out, model.global_sigma());
    write_varint(&mut out, model.unseen_seed());
    // Deterministic term order so the published artifact is reproducible.
    let mut terms: Vec<(TermId, &Rstf)> = model.terms().collect();
    terms.sort_by_key(|&(t, _)| t);
    write_varint(&mut out, terms.len() as u64);
    for (term, rstf) in terms {
        write_varint(&mut out, u64::from(term.0));
        out.push(kernel_tag(rstf.kernel()));
        write_f64(&mut out, rstf.sigma());
        let mus = rstf.density().training_values();
        write_varint(&mut out, mus.len() as u64);
        for &mu in mus {
            write_f64(&mut out, mu);
        }
    }
    out
}

/// Loads a model previously produced by [`publish_model`].
pub fn load_model(bytes: &[u8]) -> Result<RstfModel, ZerberRError> {
    if bytes.len() < MAGIC.len() + 2 || &bytes[..MAGIC.len()] != MAGIC {
        return Err(ZerberRError::InvalidParameter(
            "not a published Zerber+R model (bad magic)".into(),
        ));
    }
    let mut pos = MAGIC.len();
    let version = u16::from_le_bytes([bytes[pos], bytes[pos + 1]]);
    pos += 2;
    if version != VERSION {
        return Err(ZerberRError::InvalidParameter(format!(
            "unsupported model version {version}"
        )));
    }
    let model_kernel = kernel_from_tag(
        *bytes
            .get(pos)
            .ok_or_else(|| ZerberRError::InvalidParameter("truncated model data".into()))?,
    )?;
    pos += 1;
    let global_sigma = read_f64(bytes, &mut pos)?;
    let unseen_seed = read_varint(bytes, &mut pos)?;
    let num_terms = read_varint(bytes, &mut pos)? as usize;
    let mut per_term: HashMap<TermId, Rstf> = HashMap::with_capacity(num_terms);
    for _ in 0..num_terms {
        let term = TermId(read_varint(bytes, &mut pos)? as u32);
        let kernel = kernel_from_tag(
            *bytes
                .get(pos)
                .ok_or_else(|| ZerberRError::InvalidParameter("truncated model data".into()))?,
        )?;
        pos += 1;
        let sigma = read_f64(bytes, &mut pos)?;
        let count = read_varint(bytes, &mut pos)? as usize;
        let mut mus = Vec::with_capacity(count);
        for _ in 0..count {
            mus.push(read_f64(bytes, &mut pos)?);
        }
        per_term.insert(term, Rstf::fit(&mus, sigma, kernel)?);
    }
    if pos != bytes.len() {
        return Err(ZerberRError::InvalidParameter(format!(
            "{} trailing bytes after model data",
            bytes.len() - pos
        )));
    }
    Ok(RstfModel::from_parts(
        per_term,
        model_kernel,
        global_sigma,
        unseen_seed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::RstfConfig;
    use zerber_corpus::{
        sample_split, CorpusGenerator, CustomProfile, DatasetProfile, DocId, SplitConfig,
        SynthConfig,
    };

    fn model() -> (zerber_corpus::Corpus, RstfModel) {
        let config = SynthConfig {
            profile: DatasetProfile::Custom(CustomProfile {
                num_docs: 150,
                num_groups: 2,
                vocab_size: 300,
                general_vocab_fraction: 1.0,
                topic_mix: 0.0,
                zipf_exponent: 1.0,
                doc_length_median: 50.0,
                doc_length_sigma: 0.5,
                min_doc_length: 15,
                max_doc_length: 200,
            }),
            scale: 1.0,
            seed: 77,
        };
        let corpus = CorpusGenerator::new(config).generate().unwrap();
        let split = sample_split(&corpus, SplitConfig::default()).unwrap();
        let model = RstfModel::train(&corpus, &split, &RstfConfig::default()).unwrap();
        (corpus, model)
    }

    #[test]
    fn publish_and_load_roundtrip_preserves_every_transformation() {
        let (corpus, model) = model();
        let bytes = publish_model(&model);
        assert!(bytes.len() > 100);
        let loaded = load_model(&bytes).unwrap();
        assert_eq!(loaded.num_trained_terms(), model.num_trained_terms());
        assert_eq!(loaded.kernel(), model.kernel());
        assert!((loaded.global_sigma() - model.global_sigma()).abs() < 1e-12);
        let stats = zerber_corpus::CorpusStats::compute(&corpus);
        for t in stats.terms().take(200) {
            for &(doc, _, rel) in t.postings.iter().take(3) {
                let a = model.transform(t.term, doc, rel);
                let b = loaded.transform(t.term, doc, rel);
                assert!((a - b).abs() < 1e-12, "transform mismatch for {:?}", t.term);
            }
        }
        // Unseen-term fallback must also be identical (same seed).
        let unseen = TermId(9_999_999);
        assert_eq!(
            model.transform(unseen, DocId(5), 0.4),
            loaded.transform(unseen, DocId(5), 0.4)
        );
    }

    #[test]
    fn publishing_is_deterministic() {
        let (_, model) = model();
        assert_eq!(publish_model(&model), publish_model(&model));
    }

    #[test]
    fn bad_magic_version_and_truncation_are_rejected() {
        let (_, model) = model();
        let bytes = publish_model(&model);
        assert!(load_model(&bytes[..bytes.len() - 1]).is_err());
        assert!(load_model(b"not a model").is_err());
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xff;
        assert!(load_model(&wrong_magic).is_err());
        let mut wrong_version = bytes.clone();
        wrong_version[8] = 0xfe;
        assert!(load_model(&wrong_version).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(load_model(&trailing).is_err());
    }

    #[test]
    fn empty_model_roundtrips() {
        let model = RstfModel::from_parts(HashMap::new(), RstfKernel::Erf, 50.0, 123);
        let loaded = load_model(&publish_model(&model)).unwrap();
        assert_eq!(loaded.num_trained_terms(), 0);
        assert_eq!(loaded.kernel(), RstfKernel::Erf);
        assert_eq!(loaded.unseen_seed(), 123);
    }
}
