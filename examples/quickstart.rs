//! Quickstart: build a confidential index over a small document collection
//! and run a server-side top-k query as a group member.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::collections::HashMap;

use zerber_suite::corpus::{
    sample_split, CorpusBuilder, CorpusStats, Document, GroupId, SplitConfig,
};
use zerber_suite::crypto::MasterKey;
use zerber_suite::zerber::{BfmMerge, ConfidentialityParam, MergeScheme};
use zerber_suite::zerber_r::{retrieve_topk, OrderedIndex, RetrievalConfig, RstfConfig, RstfModel};

fn main() {
    // 1. A small access-controlled document collection (one project group).
    let mut builder = CorpusBuilder::new();
    let reports = [
        "imclone compound synthesis protocol for the reactor line",
        "meeting notes about the new compound and the delivery schedule",
        "imclone imclone test results summary for the compound trial",
        "travel reimbursement form and expense report",
        "production control software update and reactor calibration notes",
        "quarterly report about production output and staff planning",
        "compound storage guidelines and safety instructions for the lab",
        "email about the customer visit and the reactor demonstration",
        "imclone patent draft with synthesis details and prior art survey",
        "weekly status report for the production control project",
    ];
    for (i, body) in reports.iter().enumerate() {
        builder
            .add_document(Document::new(format!("doc-{i}.txt"), GroupId(0), *body))
            .expect("documents are non-empty and uniquely named");
    }
    let corpus = builder.build();
    let stats = CorpusStats::compute(&corpus);
    println!(
        "corpus: {} documents, {} distinct terms, {} tokens",
        corpus.num_docs(),
        corpus.num_terms(),
        corpus.total_tokens()
    );

    // 2. Offline phase: fit the RSTF model from a training sample and build
    //    the r-confidential ordered index.
    let split = sample_split(&corpus, SplitConfig::default()).expect("valid split");
    let model = RstfModel::train(&corpus, &split, &RstfConfig::default()).expect("training data");
    let plan = BfmMerge
        .plan(&stats, ConfidentialityParam::new(3.0).expect("r > 1"))
        .expect("corpus is mergeable");
    println!(
        "merge plan: {} merged posting lists for r = 3 (avg {:.1} terms/list)",
        plan.num_lists(),
        plan.avg_terms_per_list()
    );
    let master = MasterKey::from_passphrase("pcc advisory board", b"quickstart-salt");
    let index = OrderedIndex::build(&corpus, plan, &model, &master, 42).expect("index build");
    println!(
        "ordered index: {} encrypted posting elements, {} bytes stored server-side",
        index.num_elements(),
        index.stored_bytes()
    );

    // 3. Online phase: a member of group 0 asks for the top-3 documents for
    //    the term "imclone"; the untrusted server ranks by TRS only.
    let term = corpus
        .dictionary()
        .get("imclone")
        .expect("'imclone' occurs in the corpus");
    let memberships: HashMap<_, _> = [(GroupId(0), master.group_keys(0))].into();
    let outcome = retrieve_topk(&index, term, &memberships, &RetrievalConfig::for_k(3))
        .expect("retrieval succeeds");

    println!("\ntop-{} documents for 'imclone':", outcome.results.len());
    for (rank, (doc, relevance)) in outcome.results.iter().enumerate() {
        let entry = corpus.doc(*doc).expect("doc exists");
        println!(
            "  {}. {:<12} relevance {:.3} (group {})",
            rank + 1,
            entry.name,
            relevance,
            entry.group
        );
    }
    println!(
        "\nprotocol cost: {} request(s), {} posting elements transferred",
        outcome.requests, outcome.elements_transferred
    );
    println!("satisfied: {}", outcome.satisfied);
}
