//! Mobile top-k retrieval — the bandwidth story of Sections 2 and 6.4–6.6.
//!
//! John queries the enterprise index from a PDA over a 56 Kb/s link.  This
//! example sweeps the initial response size `b` for top-10 queries over a
//! StudIP-like collection and reports average bandwidth overhead, request
//! counts and the latency perceived over the mobile link, reproducing the
//! b = k sweet spot of Figure 11/12 at example scale.
//!
//! Run with:
//! ```text
//! cargo run --release --example mobile_topk
//! ```

use zerber_suite::corpus::DatasetProfile;
use zerber_suite::protocol::{NetworkModel, ResponseBreakdown, GOOGLE_TOP10_BYTES, SNIPPET_BYTES};
use zerber_suite::workload::{
    average_bandwidth_overhead, average_requests, single_request_fraction, MergeKind,
    QueryLogConfig, TestBed, TestBedConfig,
};
use zerber_suite::zerber_r::GrowthPolicy;

fn main() {
    let k = 10usize;
    // A laptop-scale StudIP stand-in (see DESIGN.md §3 for the calibration).
    let bed = TestBed::build(TestBedConfig {
        scale: 0.04,
        ..TestBedConfig::small(DatasetProfile::StudIp)
    })
    .expect("test bed builds");
    println!(
        "corpus: {} docs, {} terms; index: {} merged lists, {} elements",
        bed.corpus.num_docs(),
        bed.corpus.num_terms(),
        bed.index.num_lists(),
        bed.index.num_elements()
    );

    let log = bed
        .query_log(&QueryLogConfig {
            distinct_terms: 400,
            total_queries: 100_000,
            sample_queries: 200,
            ..QueryLogConfig::default()
        })
        .expect("query log");
    println!(
        "workload: {} distinct query terms representing {} queries\n",
        log.distinct_terms(),
        log.total_queries()
    );

    let net = NetworkModel::paper_intranet();
    println!(
        "{:>4} | {:>8} | {:>9} | {:>12} | {:>12}",
        "b", "AvBO", "requests", "1-req share", "latency (s)"
    );
    println!("{}", "-".repeat(58));
    for b in [1usize, 5, 10, 20, 50, 100] {
        let samples = bed
            .run_workload(&log, k, b, GrowthPolicy::Doubling)
            .expect("workload runs");
        let avbo = average_bandwidth_overhead(&samples, k);
        let reqs = average_requests(&samples);
        let one = single_request_fraction(&samples);
        // Latency over the mobile link for an average query: element bytes
        // plus the top-k snippets.
        let avg_elements: f64 = samples
            .iter()
            .map(|s| s.elements_transferred as f64 * s.query_freq as f64)
            .sum::<f64>()
            / samples.iter().map(|s| s.query_freq as f64).sum::<f64>();
        let breakdown = ResponseBreakdown::new(avg_elements.round() as usize, 58, k);
        let latency = net.query_latency_seconds(reqs.ceil() as usize, 64, breakdown.total_bytes());
        println!(
            "{:>4} | {:>8.2} | {:>9.2} | {:>11.0}% | {:>12.2}",
            b,
            avbo,
            reqs,
            one * 100.0,
            latency
        );
    }

    println!(
        "\nwith b = k = {k}: a Zerber+R answer with snippets is {} bytes vs {} bytes for a\n\
         conventional engine's top-10 page ({}x smaller), at {} B per snippet",
        ResponseBreakdown::new((k as f64 * 2.0) as usize, 58, k).total_bytes(),
        GOOGLE_TOP10_BYTES,
        GOOGLE_TOP10_BYTES / ResponseBreakdown::new(k * 2, 58, k).total_bytes().max(1),
        SNIPPET_BYTES
    );
    println!("(the b = k row should show the smallest bandwidth overhead — Figure 11)");

    // Ablation: BFM vs mixed merging request spread, the security angle of §6.2.
    let mixed = TestBed::build(TestBedConfig {
        merge: MergeKind::Mixed,
        scale: 0.04,
        ..TestBedConfig::small(DatasetProfile::StudIp)
    })
    .expect("mixed bed");
    let samples_bfm = bed
        .run_workload(&log, k, k, GrowthPolicy::Doubling)
        .unwrap();
    let samples_mixed = mixed
        .run_workload(&log, k, k, GrowthPolicy::Doubling)
        .unwrap();
    println!(
        "\nmerge-scheme ablation (b = k): avg requests BFM = {:.2}, mixed = {:.2}",
        average_requests(&samples_bfm),
        average_requests(&samples_mixed)
    );
}
