//! Adversary audit — what a compromised index server can learn (Section 6.2).
//!
//! The audit builds the same corpus twice: once as an ordinary index exposing
//! raw normalized-TF scores, and once as a Zerber+R ordered index exposing
//! only TRS values.  It then runs the three attacks of the threat model
//! (distribution fingerprinting, element attribution / unmerging, and
//! follow-up request counting) against both and prints the adversary's
//! accuracy next to the chance-level baseline.
//!
//! Run with:
//! ```text
//! cargo run --release --example adversary_audit
//! ```

use std::collections::HashMap;

use zerber_suite::adversary::{
    identification_experiment, request_counting_attack, unmerge_attack, Background, ObservedElement,
};
use zerber_suite::corpus::{DatasetProfile, TermId};
use zerber_suite::workload::{MergeKind, TestBed, TestBedConfig};

fn main() {
    let bed = TestBed::build(TestBedConfig {
        scale: 0.03,
        ..TestBedConfig::small(DatasetProfile::StudIp)
    })
    .expect("test bed builds");
    println!(
        "audited deployment: {} docs, {} merged lists, r = {}",
        bed.corpus.num_docs(),
        bed.index.num_lists(),
        bed.config.r
    );

    // ---- Attack 1: score-distribution fingerprinting -----------------------
    let background = Background::from_stats(&bed.stats);
    let min_df = 15u32;
    let raw_observations: HashMap<TermId, Vec<f64>> = bed
        .stats
        .terms()
        .filter(|t| t.doc_freq >= min_df)
        .map(|t| (t.term, t.relevance_scores()))
        .collect();
    let trs_observations: HashMap<TermId, Vec<f64>> = bed
        .stats
        .terms()
        .filter(|t| t.doc_freq >= min_df)
        .map(|t| {
            let values = t
                .postings
                .iter()
                .map(|&(doc, _, rel)| bed.model.transform(t.term, doc, rel))
                .collect();
            (t.term, values)
        })
        .collect();
    let raw_report =
        identification_experiment(&background, &raw_observations, 4, min_df as usize, 1);
    let trs_report =
        identification_experiment(&background, &trs_observations, 4, min_df as usize, 1);
    println!("\n[1] distribution fingerprinting (5 candidates, chance = 20%):");
    println!(
        "    ordinary index (raw scores): {:>5.1}% identification accuracy over {} terms",
        raw_report.accuracy() * 100.0,
        raw_report.trials
    );
    println!(
        "    Zerber+R index (TRS)       : {:>5.1}% identification accuracy over {} terms",
        trs_report.accuracy() * 100.0,
        trs_report.trials
    );

    // ---- Attack 2: unmerging an ordered posting list ------------------------
    // The dangerous case of Figure 3 is a list that merges a very frequent
    // function-word-like term with a rare content term ("and" + "imClone").
    // Build exactly that merged view: all posting elements of the most
    // frequent corpus term plus those of a rare one, and attribute each
    // element once with the raw score visible and once with only the TRS.
    let order = bed.stats.terms_by_doc_freq();
    let frequent = order[0];
    let rare = *order
        .iter()
        .find(|&&t| {
            let df = bed.stats.doc_freq(t).unwrap_or(0);
            (8..=25).contains(&df)
        })
        .expect("a moderately rare term exists");
    let pair = [frequent, rare];
    let priors: HashMap<TermId, f64> = pair
        .iter()
        .map(|&t| (t, bed.stats.probability(t).unwrap_or(0.0)))
        .collect();
    let raw_background: HashMap<TermId, Vec<f64>> = pair
        .iter()
        .map(|&t| {
            (
                t,
                bed.stats
                    .term(t)
                    .map(|s| s.relevance_scores())
                    .unwrap_or_default(),
            )
        })
        .collect();
    let mut raw_observed = Vec::new();
    let mut trs_observed = Vec::new();
    for &t in &pair {
        for &(doc, _, rel) in &bed.stats.term(t).expect("term exists").postings {
            raw_observed.push(ObservedElement {
                truth: t,
                visible_score: rel,
            });
            trs_observed.push(ObservedElement {
                truth: t,
                visible_score: bed.model.transform(t, doc, rel),
            });
        }
    }
    let raw_unmerge = unmerge_attack(&raw_observed, &raw_background, &priors);
    let trs_unmerge = unmerge_attack(&trs_observed, &raw_background, &priors);
    println!(
        "\n[2] element attribution on a frequent+rare merged list ({} elements, {} terms):",
        raw_observed.len(),
        pair.len()
    );
    // Mixed-merge ablation bed, also used by attack 3 below.
    let mixed_bed = TestBed::build(TestBedConfig {
        merge: MergeKind::Mixed,
        scale: 0.03,
        ..TestBedConfig::small(DatasetProfile::StudIp)
    })
    .expect("mixed bed");
    println!(
        "    raw scores visible: {:>5.1}% correct (prior baseline {:>5.1}%, amplification {:.2}x)",
        raw_unmerge.accuracy() * 100.0,
        raw_unmerge.prior_accuracy() * 100.0,
        raw_unmerge.amplification()
    );
    println!(
        "    TRS visible       : {:>5.1}% correct (prior baseline {:>5.1}%, amplification {:.2}x, bound r = {})",
        trs_unmerge.accuracy() * 100.0,
        trs_unmerge.prior_accuracy() * 100.0,
        trs_unmerge.amplification(),
        bed.config.r
    );

    // ---- Attack 3: follow-up request counting -------------------------------
    let bfm_report = request_counting_attack(&bed.index, &bed.stats, &bed.all_memberships, 10, 30)
        .expect("attack runs");
    let mixed_report = request_counting_attack(
        &mixed_bed.index,
        &mixed_bed.stats,
        &mixed_bed.all_memberships,
        10,
        30,
    )
    .expect("attack runs");
    println!("\n[3] follow-up request counting (top-10, b = 10):");
    println!(
        "    BFM merging   : rare term identifiable in {:>5.1}% of lists, request spread {:.2}",
        bfm_report.success_rate() * 100.0,
        bfm_report.mean_request_spread
    );
    println!(
        "    mixed merging : rare term identifiable in {:>5.1}% of lists, request spread {:.2}",
        mixed_report.success_rate() * 100.0,
        mixed_report.mean_request_spread
    );
    println!("\n(the Zerber+R / BFM rows should stay near the chance baselines)");
}
