//! Enterprise document sharing — the PCC scenario of Section 2.
//!
//! John leads several customer projects and belongs to multiple collaboration
//! groups; a subcontractor only belongs to one.  Both search the same
//! outsourced index through the untrusted server, which enforces access
//! control and ranks by TRS without ever decrypting a posting element.  John
//! also indexes a new document from the road, exercising the online insert
//! path.
//!
//! Run with:
//! ```text
//! cargo run --release --example enterprise_sharing
//! ```

use std::collections::HashMap;

use zerber_suite::corpus::CorpusGenerator;
use zerber_suite::corpus::{
    sample_split, CorpusStats, CustomProfile, DatasetProfile, DocId, GroupId, SplitConfig,
    SynthConfig,
};
use zerber_suite::crypto::{GroupKeys, MasterKey};
use zerber_suite::protocol::{AccessControl, Client, IndexServer};
use zerber_suite::zerber::{BfmMerge, ConfidentialityParam, MergeScheme};
use zerber_suite::zerber_r::{OrderedIndex, RetrievalConfig, RstfConfig, RstfModel};

fn keyring(master: &MasterKey, groups: &[u32]) -> HashMap<GroupId, GroupKeys> {
    groups
        .iter()
        .map(|&g| (GroupId(g), master.group_keys(g)))
        .collect()
}

fn main() {
    // 1. PCC's shared document base: three customer projects, synthetic but
    //    statistically realistic (Zipfian vocabulary, log-normal lengths).
    let synth = SynthConfig {
        profile: DatasetProfile::Custom(CustomProfile {
            num_docs: 600,
            num_groups: 3,
            vocab_size: 2_000,
            general_vocab_fraction: 0.5,
            topic_mix: 0.35,
            zipf_exponent: 1.05,
            doc_length_median: 90.0,
            doc_length_sigma: 0.8,
            min_doc_length: 20,
            max_doc_length: 600,
        }),
        scale: 1.0,
        seed: 2_009,
    };
    let corpus = CorpusGenerator::new(synth)
        .generate()
        .expect("generation succeeds");
    let stats = CorpusStats::compute(&corpus);
    println!(
        "PCC document base: {} documents in {} project groups, {} distinct terms",
        corpus.num_docs(),
        corpus.num_groups(),
        corpus.num_terms()
    );

    // 2. The advisory board initializes Zerber+R: RSTF training, BFM merge
    //    plan with r = 3, encrypted ordered index, and the index server run
    //    by the (untrusted) hosting provider.
    let split = sample_split(&corpus, SplitConfig::default()).expect("split");
    let model = RstfModel::train(&corpus, &split, &RstfConfig::default()).expect("training");
    let plan = BfmMerge
        .plan(&stats, ConfidentialityParam::new(3.0).expect("r > 1"))
        .expect("merge plan");
    let master = MasterKey::from_passphrase("pcc master secret", b"enterprise-salt");
    let index = OrderedIndex::build(&corpus, plan.clone(), &model, &master, 7).expect("index");
    let mut acl = AccessControl::new(b"hosting-provider-secret");
    acl.register_user("john", &[GroupId(0), GroupId(1), GroupId(2)]);
    acl.register_user("subcontractor", &[GroupId(1)]);
    let server = IndexServer::new(index, acl);
    println!(
        "index server hosts {} merged posting lists / {} encrypted elements ({} KiB)",
        server.num_lists(),
        server.num_elements(),
        server.stored_bytes() / 1024
    );

    // 3. Both users search for the same frequent project term.
    let term = stats.terms_by_doc_freq()[3];
    let term_name = corpus
        .dictionary()
        .term(term)
        .unwrap_or("<unknown>")
        .to_string();
    let john = Client::new(
        "john",
        server.acl().issue_token("john"),
        keyring(&master, &[0, 1, 2]),
    );
    let sub = Client::new(
        "subcontractor",
        server.acl().issue_token("subcontractor"),
        keyring(&master, &[1]),
    );
    let config = RetrievalConfig::for_k(10);
    let john_results = john
        .query(&server, &plan, term, &config)
        .expect("john's query succeeds");
    let sub_results = sub
        .query(&server, &plan, term, &config)
        .expect("subcontractor's query succeeds");
    println!("\nquery term: {term_name:?} (top-10)");
    println!(
        "  john          : {} results from groups {:?}, {} request(s), {} bytes down",
        john_results.results.len(),
        john_results
            .results
            .iter()
            .map(|&(d, _)| corpus.doc(d).unwrap().group.0)
            .collect::<std::collections::BTreeSet<_>>(),
        john_results.requests,
        john_results.bytes_received
    );
    println!(
        "  subcontractor : {} results, all from group 1: {}",
        sub_results.results.len(),
        sub_results
            .results
            .iter()
            .all(|&(d, _)| corpus.doc(d).unwrap().group == GroupId(1))
    );

    // 4. John indexes a fresh trip report for project 0 from his PDA.
    let mut john = john;
    let trip_terms: Vec<(zerber_suite::corpus::TermId, u32)> =
        vec![(term, 6), (stats.terms_by_doc_freq()[10], 2)];
    let inserted = john
        .insert_document(
            &server,
            &plan,
            &model,
            DocId(1_000_000),
            GroupId(0),
            &trip_terms,
        )
        .expect("insert succeeds");
    println!("\njohn inserted a new trip report: {inserted} posting elements added");
    let after = john
        .query(&server, &plan, term, &RetrievalConfig::for_k(3))
        .expect("query after insert");
    let found = after.results.iter().any(|&(d, _)| d == DocId(1_000_000));
    println!("new document already ranks in john's top-3: {found}");

    // 5. The subcontractor cannot write into project 0.
    let mut sub = sub;
    let denied = sub.insert_document(
        &server,
        &plan,
        &model,
        DocId(1_000_001),
        GroupId(0),
        &trip_terms,
    );
    println!(
        "subcontractor insert into project 0 denied: {}",
        denied.is_err()
    );
    println!("\nserver-side traffic counters: {:?}", server.stats());
}
