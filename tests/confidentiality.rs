//! Cross-crate confidentiality tests: the TRS stored on the untrusted server
//! must be statistically silent about which term a posting element belongs
//! to, while the raw scores of an ordinary index are not.

use std::collections::HashMap;

use zerber_suite::adversary::{identification_experiment, Background};
use zerber_suite::corpus::{DatasetProfile, TermId};
use zerber_suite::workload::{TestBed, TestBedConfig};
use zerber_suite::zerber_r::{uniformity_variance, RstfKernel};

fn bed() -> &'static TestBed {
    use std::sync::OnceLock;
    static BED: OnceLock<TestBed> = OnceLock::new();
    BED.get_or_init(|| {
        TestBed::build(TestBedConfig {
            scale: 0.01,
            ..TestBedConfig::small(DatasetProfile::OdpWeb)
        })
        .expect("test bed builds")
    })
}

fn trs_values(bed: &TestBed, term: TermId) -> Vec<f64> {
    bed.stats
        .term(term)
        .expect("term exists")
        .postings
        .iter()
        .map(|&(doc, _, rel)| bed.model.transform(term, doc, rel))
        .collect()
}

#[test]
fn trs_distributions_are_far_more_uniform_than_raw_scores() {
    let bed = bed();
    let order = bed.stats.terms_by_doc_freq();
    let mut improved = 0usize;
    let mut tested = 0usize;
    for &term in order.iter().take(40) {
        let stats = bed.stats.term(term).unwrap();
        if stats.doc_freq < 30 {
            continue;
        }
        let raw: Vec<f64> = stats.relevance_scores();
        let trs = trs_values(bed, term);
        let raw_var = uniformity_variance(&raw);
        let trs_var = uniformity_variance(&trs);
        tested += 1;
        if trs_var < raw_var {
            improved += 1;
        }
    }
    assert!(tested >= 10, "need enough frequent terms to test");
    assert!(
        improved as f64 / tested as f64 > 0.9,
        "RSTF should uniformize nearly every frequent term ({improved}/{tested})"
    );
}

#[test]
fn trs_distributions_of_different_terms_are_mutually_indistinguishable() {
    // Pairwise two-sample KS distances between the TRS distributions of
    // different frequent terms must be small — this is the operational
    // meaning of "relevance scores of different terms are indistinguishable".
    let bed = bed();
    let order = bed.stats.terms_by_doc_freq();
    let frequent: Vec<TermId> = order
        .iter()
        .copied()
        .filter(|&t| bed.stats.doc_freq(t).unwrap_or(0) >= 50)
        .take(8)
        .collect();
    assert!(frequent.len() >= 4);
    let mut max_trs_distance: f64 = 0.0;
    let mut max_raw_distance: f64 = 0.0;
    for i in 0..frequent.len() {
        for j in (i + 1)..frequent.len() {
            let a_trs = trs_values(bed, frequent[i]);
            let b_trs = trs_values(bed, frequent[j]);
            let a_raw = bed.stats.term(frequent[i]).unwrap().relevance_scores();
            let b_raw = bed.stats.term(frequent[j]).unwrap().relevance_scores();
            max_trs_distance =
                max_trs_distance.max(zerber_suite::zerber_r::math::ks_two_sample(&a_trs, &b_trs));
            max_raw_distance =
                max_raw_distance.max(zerber_suite::zerber_r::math::ks_two_sample(&a_raw, &b_raw));
        }
    }
    assert!(
        max_trs_distance < max_raw_distance,
        "TRS distances ({max_trs_distance}) must be below raw distances ({max_raw_distance})"
    );
    assert!(
        max_trs_distance < 0.35,
        "pairwise TRS KS distance should stay small, got {max_trs_distance}"
    );
}

#[test]
fn fingerprinting_accuracy_collapses_from_raw_to_trs() {
    let bed = bed();
    let min_df = 25u32;
    let background = Background::from_stats(&bed.stats);
    let raw: HashMap<TermId, Vec<f64>> = bed
        .stats
        .terms()
        .filter(|t| t.doc_freq >= min_df)
        .map(|t| (t.term, t.relevance_scores()))
        .collect();
    let trs: HashMap<TermId, Vec<f64>> = raw.keys().map(|&t| (t, trs_values(bed, t))).collect();
    let raw_report = identification_experiment(&background, &raw, 4, min_df as usize, 11);
    let trs_report = identification_experiment(&background, &trs, 4, min_df as usize, 11);
    assert!(raw_report.trials >= 20);
    assert!(
        raw_report.accuracy() > 0.9,
        "raw accuracy {}",
        raw_report.accuracy()
    );
    assert!(
        trs_report.accuracy() < raw_report.accuracy() / 2.0,
        "TRS accuracy {} should collapse relative to raw {}",
        trs_report.accuracy(),
        raw_report.accuracy()
    );
    assert!(
        trs_report.accuracy() < 0.5,
        "TRS accuracy {} should approach the 0.2 chance level",
        trs_report.accuracy()
    );
}

#[test]
fn both_rstf_kernels_preserve_per_term_ranking() {
    // Whatever kernel is used, the per-term ordering must be identical to the
    // raw relevance ordering — otherwise retrieval accuracy would suffer.
    let bed = bed();
    let term = bed.stats.terms_by_doc_freq()[0];
    let stats = bed.stats.term(term).unwrap();
    for kernel in [RstfKernel::Logistic, RstfKernel::Erf] {
        let scores: Vec<f64> = stats.relevance_scores();
        let rstf = zerber_suite::zerber_r::Rstf::fit(&scores, 200.0, kernel).unwrap();
        let mut pairs: Vec<(f64, f64)> = scores.iter().map(|&s| (s, rstf.transform(s))).collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in pairs.windows(2) {
            assert!(w[1].1 >= w[0].1, "kernel {kernel:?} broke the ordering");
        }
    }
}

#[test]
fn unseen_term_fallback_is_uniform_and_deterministic() {
    let bed = bed();
    let unseen = TermId(3_000_000);
    let values: Vec<f64> = (0..500)
        .map(|i| {
            bed.model
                .transform(unseen, zerber_suite::corpus::DocId(i), 0.3)
        })
        .collect();
    // Deterministic per (term, doc).
    let again: Vec<f64> = (0..500)
        .map(|i| {
            bed.model
                .transform(unseen, zerber_suite::corpus::DocId(i), 0.9)
        })
        .collect();
    assert_eq!(
        values, again,
        "fallback TRS ignores the raw score and is stable"
    );
    // And the fallback population is spread over [0,1) rather than clustered.
    let var = uniformity_variance(&values);
    assert!(
        var < 5e-3,
        "fallback TRS should look uniform, variance {var}"
    );
    assert!(values.iter().all(|v| (0.0..1.0).contains(v)));
}
