//! Cross-engine equivalence property test: random interleavings of
//! position-preserving inserts, ranged queries and cursor sessions must be
//! answered element-for-element identically by every storage engine —
//! `SingleMutexStore`, `ShardedStore` (plain `Vec` layout), `SegmentStore`
//! (compressed block-encoded segments with a mutable tail) and `SpillStore`
//! (the same segments with cold ones living in on-disk page files behind an
//! LRU page cache) — the latter statically placed, tiering-tuned (with
//! maintenance — promotion, demotion, page-file compaction — forced on
//! every operation) and durable (write-ahead logging plus aggressive
//! checkpointing live during the workload).
//!
//! The engines share one generic session table, so this test pins down the
//! layer where they *can* diverge: the physical list representation (scan,
//! visibility counting, block skipping, insert placement, tail sealing and
//! compaction in the segment engine).

use proptest::prelude::*;
use zerber_suite::corpus::{GroupId, TermId};
use zerber_suite::protocol::{AccessControl, AuthToken, IndexServer, QueryRequest};
use zerber_suite::store::{
    CursorId, DurableConfig, ListStore, RangedFetch, SegmentConfig, SegmentStore, ShardedStore,
    SingleMutexStore, SpillConfig, SpillStore, SyncPolicy,
};
use zerber_suite::zerber::{EncryptedElement, MergePlan, MergedListId};
use zerber_suite::zerber_r::{OrderedElement, OrderedIndex};

const NUM_GROUPS: u32 = 4;

/// One step of the interleaved workload, applied to every engine.
#[derive(Debug, Clone)]
enum Op {
    /// Insert a sealed element at its TRS position.
    Insert {
        list: usize,
        trs: f64,
        group: u32,
        ct: Vec<u8>,
    },
    /// A ranged fetch; when `open` is set, a cursor session is opened from
    /// the returned batch (the follow-up path of the protocol).
    Fetch {
        list: usize,
        offset: usize,
        count: usize,
        mask: u8,
        open: bool,
        owner: u64,
    },
    /// Resume one of the previously opened sessions.
    CursorFetch { session: usize, count: usize },
    /// Close one of the sessions — with the right or a foreign owner tag.
    CursorClose { session: usize, foreign: bool },
}

fn groups_from_mask(mask: u8) -> Option<Vec<GroupId>> {
    if mask == 0 {
        return None;
    }
    Some(
        (0..NUM_GROUPS)
            .filter(|g| mask & (1 << g) != 0)
            .map(GroupId)
            .collect(),
    )
}

fn element(trs: f64, group: u32, ct: Vec<u8>) -> OrderedElement {
    let group = GroupId(group % NUM_GROUPS);
    OrderedElement {
        trs,
        group,
        sealed: EncryptedElement {
            group,
            ciphertext: ct,
        },
    }
}

/// Builds the six engines over identical fabricated indexes.
fn engines(
    lists: &[Vec<OrderedElement>],
) -> (
    SingleMutexStore,
    ShardedStore,
    SegmentStore,
    SpillStore,
    SpillStore,
    SpillStore,
) {
    let plan = MergePlan::from_term_lists(
        (0..lists.len()).map(|i| vec![TermId(i as u32)]).collect(),
        "equivalence-fixture",
        2.0,
    );
    // Tiny blocks and tail so every case crosses block boundaries, seals
    // the tail and compacts the segment stack.
    let segment_config = SegmentConfig {
        block_len: 3,
        tail_threshold: 2,
        max_segment_elems: 12,
        max_segments: 2,
        max_payload_bytes: u32::MAX as usize,
    };
    let index = OrderedIndex::from_parts(lists.to_vec(), plan);
    (
        SingleMutexStore::new(index.clone()),
        ShardedStore::with_shards(index.clone(), 2),
        SegmentStore::with_config(index.clone(), 2, segment_config).unwrap(),
        // Zero resident budget + a tiny page cache: every sealed segment
        // round-trips through the on-disk page format under this workload.
        SpillStore::in_temp_dir_with(
            index.clone(),
            2,
            SpillConfig {
                resident_budget_bytes: 0,
                page_cache_pages: 2,
                ..SpillConfig::default().without_tiering()
            },
            segment_config,
        )
        .unwrap(),
        // Tiering-tuned spill engine: a tiny nonzero budget plus the most
        // aggressive maintenance knobs, so every operation can trigger a
        // retier pass and a page-file compaction mid-workload.  Promotion,
        // demotion and live-page rewrites must all stay answer-invisible.
        SpillStore::in_temp_dir_with(
            index.clone(),
            2,
            SpillConfig {
                resident_budget_bytes: 512,
                page_cache_pages: 1,
                compact_dead_percent: 1,
                compact_min_dead_bytes: 1,
                retier_interval: 1,
                heat_decay_window: 16,
            },
            segment_config,
        )
        .unwrap(),
        // The durable engine with the full WAL/checkpoint machinery live:
        // every insert is write-ahead logged, a tiny checkpoint threshold
        // forces manifest commits and WAL resets mid-workload, and none of
        // it may be visible in any answer.
        SpillStore::durable_in_temp_dir_with(
            index,
            2,
            SpillConfig {
                resident_budget_bytes: 0,
                page_cache_pages: 2,
                ..SpillConfig::default().without_tiering()
            },
            segment_config,
            DurableConfig {
                sync: SyncPolicy::Never,
                checkpoint_wal_bytes: 256,
            },
        )
        .unwrap(),
    )
}

/// Index servers over the three engines, sharing one user directory with
/// deliberately different group views per user (so a cross-user round mixes
/// visibility filters): `user-0` sees everything, `user-3` nothing, and
/// `user-4` is never registered.
fn servers(lists: &[Vec<OrderedElement>]) -> Vec<IndexServer> {
    let (single, sharded, segmented, spilled, tiering, durable) = engines(lists);
    let mut acl = AccessControl::new(b"batch-oracle");
    acl.register_user("user-0", &[GroupId(0), GroupId(1), GroupId(2), GroupId(3)]);
    acl.register_user("user-1", &[GroupId(0), GroupId(1)]);
    acl.register_user("user-2", &[GroupId(2)]);
    acl.register_user("user-3", &[]);
    let stores: [Box<dyn ListStore>; 6] = [
        Box::new(single),
        Box::new(sharded),
        Box::new(segmented),
        Box::new(spilled),
        Box::new(tiering),
        Box::new(durable),
    ];
    stores
        .into_iter()
        .map(|store| IndexServer::with_store(store, acl.clone()))
        .collect()
}

/// A session as each engine sees it: the engine-local cursor id plus the
/// shared (list, owner, groups) context it was opened with.
struct Session {
    cursors: [CursorId; 6],
    owner: u64,
    groups: Option<Vec<GroupId>>,
}

fn sorted(mut items: Vec<(f64, u32, Vec<u8>)>) -> Vec<OrderedElement> {
    items.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite TRS"));
    items
        .into_iter()
        .map(|(t, g, c)| element(t, g, c))
        .collect()
}

fn trs_strategy() -> impl Strategy<Value = f64> {
    // Coarse granularity produces plenty of exact TRS ties, which is where
    // insert placement and order-exact decoding can silently diverge.
    (0u32..64).prop_map(|q| q as f64 / 64.0)
}

fn op_strategy(num_lists: usize) -> impl Strategy<Value = Op> {
    let ct = proptest::collection::vec(any::<u8>(), 0..10);
    prop_oneof![
        3 => (0..num_lists, trs_strategy(), 0..NUM_GROUPS, ct)
            .prop_map(|(list, trs, group, ct)| Op::Insert { list, trs, group, ct }),
        4 => (0..num_lists, 0usize..40, 1usize..8, any::<u8>(), any::<bool>(), 1u64..4)
            .prop_map(|(list, offset, count, mask, open, owner)| Op::Fetch {
                list, offset, count, mask, open, owner,
            }),
        3 => (any::<usize>(), 1usize..8)
            .prop_map(|(session, count)| Op::CursorFetch { session, count }),
        1 => (any::<usize>(), any::<bool>())
            .prop_map(|(session, foreign)| Op::CursorClose { session, foreign }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engines_answer_interleaved_workloads_identically(
        lists in proptest::collection::vec(
            proptest::collection::vec(
                (trs_strategy(), 0..NUM_GROUPS, proptest::collection::vec(any::<u8>(), 0..10)),
                0..40,
            ).prop_map(sorted),
            1..4,
        ),
        ops in proptest::collection::vec(op_strategy(3), 1..50),
    ) {
        let (single, sharded, segmented, spilled, tiering, durable) = engines(&lists);
        let stores: [&dyn ListStore; 6] =
            [&single, &sharded, &segmented, &spilled, &tiering, &durable];
        let mut sessions: Vec<Session> = Vec::new();
        for op in ops {
            match op {
                Op::Insert { list, trs, group, ct } => {
                    let list = MergedListId((list % lists.len()) as u64);
                    let positions: Vec<_> = stores
                        .iter()
                        .map(|s| s.insert(list, element(trs, group, ct.clone())).unwrap())
                        .collect();
                    prop_assert_eq!(positions[0], positions[1]);
                    prop_assert_eq!(positions[0], positions[2]);
                    prop_assert_eq!(positions[0], positions[3]);
                    prop_assert_eq!(positions[0], positions[4]);
                    prop_assert_eq!(positions[0], positions[5]);
                }
                Op::Fetch { list, offset, count, mask, open, owner } => {
                    let list = MergedListId((list % lists.len()) as u64);
                    let groups = groups_from_mask(mask);
                    let fetch = RangedFetch { list, offset, count };
                    let batches: Vec<_> = stores
                        .iter()
                        .map(|s| s.fetch_ranged(&fetch, groups.as_deref()).unwrap())
                        .collect();
                    prop_assert_eq!(&batches[0], &batches[1]);
                    prop_assert_eq!(&batches[0], &batches[2]);
                    prop_assert_eq!(&batches[0], &batches[3]);
                    prop_assert_eq!(&batches[0], &batches[4]);
                    prop_assert_eq!(&batches[0], &batches[5]);
                    if open && !batches[0].exhausted {
                        let delivered = offset + batches[0].elements.len();
                        let mut cursors = [CursorId::NONE; 6];
                        for (i, store) in stores.iter().enumerate() {
                            cursors[i] = store
                                .open_cursor(list, owner, &batches[i], delivered, groups.as_deref())
                                .unwrap();
                        }
                        sessions.push(Session { cursors, owner, groups });
                    }
                }
                Op::CursorFetch { session, count } => {
                    if sessions.is_empty() {
                        continue;
                    }
                    let session = &sessions[session % sessions.len()];
                    let results: Vec<_> = stores
                        .iter()
                        .enumerate()
                        .map(|(i, s)| {
                            s.cursor_fetch(
                                session.cursors[i],
                                session.owner,
                                count,
                                session.groups.as_deref(),
                            )
                        })
                        .collect();
                    // Error payloads carry engine-local cursor ids, so
                    // compare outcomes, then batches.
                    prop_assert_eq!(results[0].is_ok(), results[1].is_ok());
                    prop_assert_eq!(results[0].is_ok(), results[2].is_ok());
                    prop_assert_eq!(results[0].is_ok(), results[3].is_ok());
                    prop_assert_eq!(results[0].is_ok(), results[4].is_ok());
                    prop_assert_eq!(results[0].is_ok(), results[5].is_ok());
                    if let Ok(a) = &results[0] {
                        for b in results[1..].iter().flatten() {
                            prop_assert_eq!(a, b);
                        }
                    }
                }
                Op::CursorClose { session, foreign } => {
                    if sessions.is_empty() {
                        continue;
                    }
                    let session = &sessions[session % sessions.len()];
                    let owner = if foreign { session.owner ^ 0xdead } else { session.owner };
                    for (i, store) in stores.iter().enumerate() {
                        store.close_cursor(session.cursors[i], owner);
                    }
                }
            }
        }
        // Terminal audit: identical logical state, sessions and sizes.
        for l in 0..lists.len() as u64 {
            let id = MergedListId(l);
            let reference = single.snapshot_list(id).unwrap();
            prop_assert_eq!(&sharded.snapshot_list(id).unwrap(), &reference);
            prop_assert_eq!(&segmented.snapshot_list(id).unwrap(), &reference);
            prop_assert_eq!(&spilled.snapshot_list(id).unwrap(), &reference);
            prop_assert_eq!(&tiering.snapshot_list(id).unwrap(), &reference);
            prop_assert_eq!(&durable.snapshot_list(id).unwrap(), &reference);
            for mask in [0u8, 1, 5, 0b1111] {
                let groups = groups_from_mask(mask);
                let expected = single.visible_len(id, groups.as_deref()).unwrap();
                prop_assert_eq!(sharded.visible_len(id, groups.as_deref()).unwrap(), expected);
                prop_assert_eq!(segmented.visible_len(id, groups.as_deref()).unwrap(), expected);
                prop_assert_eq!(spilled.visible_len(id, groups.as_deref()).unwrap(), expected);
                prop_assert_eq!(tiering.visible_len(id, groups.as_deref()).unwrap(), expected);
                prop_assert_eq!(durable.visible_len(id, groups.as_deref()).unwrap(), expected);
            }
        }
        prop_assert!(single.verify_ordering());
        prop_assert!(sharded.verify_ordering());
        prop_assert!(segmented.verify_ordering());
        prop_assert!(spilled.verify_ordering());
        prop_assert!(tiering.verify_ordering());
        prop_assert!(durable.verify_ordering());
        // The self-managing engine's exact budget accounting must survive
        // any interleaving of serving traffic with its maintenance passes.
        prop_assert!(tiering.budget_accounting_is_exact());
        // Same invariant through WAL appends, checkpoints and WAL resets.
        prop_assert!(durable.budget_accounting_is_exact());
        prop_assert_eq!(single.num_elements(), sharded.num_elements());
        prop_assert_eq!(single.num_elements(), segmented.num_elements());
        prop_assert_eq!(single.num_elements(), spilled.num_elements());
        prop_assert_eq!(single.num_elements(), tiering.num_elements());
        prop_assert_eq!(single.num_elements(), durable.num_elements());
        prop_assert_eq!(single.stored_bytes(), segmented.stored_bytes());
        prop_assert_eq!(single.stored_bytes(), spilled.stored_bytes());
        prop_assert_eq!(single.stored_bytes(), tiering.stored_bytes());
        prop_assert_eq!(single.stored_bytes(), durable.stored_bytes());
        prop_assert_eq!(single.ciphertext_bytes(), segmented.ciphertext_bytes());
        prop_assert_eq!(single.ciphertext_bytes(), spilled.ciphertext_bytes());
        prop_assert_eq!(single.ciphertext_bytes(), tiering.ciphertext_bytes());
        prop_assert_eq!(single.ciphertext_bytes(), durable.ciphertext_bytes());
        prop_assert_eq!(single.open_cursors(), sharded.open_cursors());
        prop_assert_eq!(single.open_cursors(), segmented.open_cursors());
        prop_assert_eq!(single.open_cursors(), spilled.open_cursors());
        prop_assert_eq!(single.open_cursors(), tiering.open_cursors());
        prop_assert_eq!(single.open_cursors(), durable.open_cursors());
    }

    /// The batched-vs-sequential oracle: any `handle_query_stream` round —
    /// requests from many users with different group views, unknown users,
    /// forged tokens, stale cursors and unknown lists mixed in — must answer
    /// element-for-element identically to the same requests issued one at a
    /// time through `handle_query`, across all four engines.  A failing
    /// request (denied user, unknown list) degrades alone; the rest of the
    /// batch stays correct.
    #[test]
    fn stream_batches_equal_sequential_queries_across_engines(
        lists in proptest::collection::vec(
            proptest::collection::vec(
                (trs_strategy(), 0..NUM_GROUPS, proptest::collection::vec(any::<u8>(), 0..10)),
                0..40,
            ).prop_map(sorted),
            1..4,
        ),
        reqs in proptest::collection::vec(
            // (user incl. one unknown, list incl. unknown ids, offset,
            //  count, stale cursor?, forged token?)
            (0usize..5, 0u64..5, 0u64..30, 1u32..8, any::<bool>(), any::<bool>()),
            1..40,
        ),
    ) {
        let servers = servers(&lists);
        let mut per_engine: Vec<Vec<_>> = Vec::with_capacity(servers.len());
        for server in &servers {
            let round: Vec<(QueryRequest, AuthToken)> = reqs
                .iter()
                .map(|&(u, list, offset, count, stale, forged)| {
                    let user = format!("user-{u}");
                    let token = if forged {
                        AuthToken([7u8; 32])
                    } else {
                        server.acl().issue_token(&user)
                    };
                    let request = QueryRequest {
                        user,
                        list,
                        offset,
                        // A cursor id no engine ever issued: the batch must
                        // fall back to the stateless offset scan for this
                        // request, exactly like the sequential path.
                        cursor: if stale { 0x0bad_c0de << 8 } else { 0 },
                        count,
                        k: count,
                    };
                    (request, token)
                })
                .collect();
            let batched = server.handle_query_stream(&round);
            prop_assert_eq!(batched.len(), round.len());
            for ((request, token), batch_result) in round.iter().zip(&batched) {
                let sequential = server.handle_query(request, token);
                match (batch_result, &sequential) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(&a.elements, &b.elements);
                        prop_assert_eq!(a.visible_total, b.visible_total);
                    }
                    (Err(a), Err(b)) => prop_assert_eq!(a, b),
                    _ => prop_assert!(
                        false,
                        "batched and sequential disagree on outcome for {:?}",
                        request
                    ),
                }
            }
            per_engine.push(
                batched
                    .into_iter()
                    .map(|r| r.map(|resp| (resp.elements, resp.visible_total)))
                    .collect(),
            );
        }
        // And the six engines agree with each other, request for request.
        prop_assert_eq!(&per_engine[0], &per_engine[1]);
        prop_assert_eq!(&per_engine[0], &per_engine[2]);
        prop_assert_eq!(&per_engine[0], &per_engine[3]);
        prop_assert_eq!(&per_engine[0], &per_engine[4]);
        prop_assert_eq!(&per_engine[0], &per_engine[5]);
    }

    /// The parallel-round oracle: executing a stream round on the persistent
    /// shard worker pool (2 workers, concurrent buckets, work-stealing) must
    /// be output-deterministic — element-for-element identical to the same
    /// round on the sequential in-thread scheduler AND to the requests
    /// issued one at a time through `handle_query`, across all four engines,
    /// with forged tokens, stale cursors and unknown lists mixed into the
    /// parallel round.
    #[test]
    fn parallel_rounds_equal_sequential_rounds_across_engines(
        lists in proptest::collection::vec(
            proptest::collection::vec(
                (trs_strategy(), 0..NUM_GROUPS, proptest::collection::vec(any::<u8>(), 0..10)),
                0..40,
            ).prop_map(sorted),
            1..4,
        ),
        reqs in proptest::collection::vec(
            (0usize..5, 0u64..5, 0u64..30, 1u32..8, any::<bool>(), any::<bool>()),
            1..40,
        ),
    ) {
        let sequential = servers(&lists);
        let parallel = servers(&lists);
        let workers = std::env::var("ZERBER_TEST_SHARD_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(2)
            .max(1);
        for server in &parallel {
            server.set_shard_workers(workers);
        }
        let mut per_engine: Vec<Vec<_>> = Vec::with_capacity(parallel.len());
        for (seq, par) in sequential.iter().zip(&parallel) {
            // The ACL (and so every issued token) is shared across all
            // servers; forged tokens and the unregistered user-4 exercise
            // per-request failures inside the parallel round.
            let round: Vec<(QueryRequest, AuthToken)> = reqs
                .iter()
                .map(|&(u, list, offset, count, stale, forged)| {
                    let user = format!("user-{u}");
                    let token = if forged {
                        AuthToken([7u8; 32])
                    } else {
                        seq.acl().issue_token(&user)
                    };
                    let request = QueryRequest {
                        user,
                        list,
                        offset,
                        cursor: if stale { 0x0bad_c0de << 8 } else { 0 },
                        count,
                        k: count,
                    };
                    (request, token)
                })
                .collect();
            let pooled = par.handle_query_stream(&round);
            let inline = seq.handle_query_stream(&round);
            prop_assert_eq!(pooled.len(), round.len());
            for (((request, token), p), s) in round.iter().zip(&pooled).zip(&inline) {
                let one_at_a_time = seq.handle_query(request, token);
                for other in [s, &one_at_a_time] {
                    match (p, other) {
                        (Ok(a), Ok(b)) => {
                            prop_assert_eq!(&a.elements, &b.elements);
                            prop_assert_eq!(a.visible_total, b.visible_total);
                        }
                        (Err(a), Err(b)) => prop_assert_eq!(a, b),
                        _ => prop_assert!(
                            false,
                            "pooled and sequential disagree on outcome for {:?}",
                            request
                        ),
                    }
                }
            }
            // Rounds of more than one request must actually have gone
            // through the pool (single requests take the per-query fast
            // path on both schedulers).
            if round.len() > 1 {
                prop_assert!(par.stats().worker_rounds > 0);
                prop_assert_eq!(seq.stats().worker_rounds, 0);
            }
            per_engine.push(
                pooled
                    .into_iter()
                    .map(|r| r.map(|resp| (resp.elements, resp.visible_total)))
                    .collect::<Vec<_>>(),
            );
        }
        // All six parallel engines agree with each other too.
        prop_assert_eq!(&per_engine[0], &per_engine[1]);
        prop_assert_eq!(&per_engine[0], &per_engine[2]);
        prop_assert_eq!(&per_engine[0], &per_engine[3]);
        prop_assert_eq!(&per_engine[0], &per_engine[4]);
        prop_assert_eq!(&per_engine[0], &per_engine[5]);
    }
}

/// Unique on-disk root per proptest case for the replica equivalence
/// property, under the staging tree the hygiene guard sweeps.
fn replica_case_root() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join("zerber-replica").join(format!(
        "{}-equivalence-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A caught-up read replica is just another engine: bootstrapped from a
    /// durable primary's snapshot and fed its WAL tail, it must answer
    /// every ranged fetch and visibility count element-for-element
    /// identically to the in-memory oracle — across offsets, counts and
    /// group-mask filters — while refusing writes.
    #[test]
    fn replica_reads_match_the_oracle(
        lists in proptest::collection::vec(
            proptest::collection::vec(
                (trs_strategy(), 0..NUM_GROUPS, proptest::collection::vec(any::<u8>(), 0..6)),
                0..24,
            ).prop_map(sorted),
            1..4,
        ),
        streamed in proptest::collection::vec(
            (0usize..4, trs_strategy(), 0..NUM_GROUPS, proptest::collection::vec(any::<u8>(), 0..6)),
            1..24,
        ),
        fetches in proptest::collection::vec(
            (0usize..4, 0usize..30, 1usize..8, any::<u8>()),
            1..16,
        ),
    ) {
        use std::sync::Arc;
        use zerber_suite::store::{
            InProcessTransport, RealIo, Replica, ReplicaConfig, ReplicaTransport,
            ReplicationSource,
        };

        let plan = MergePlan::from_term_lists(
            (0..lists.len()).map(|i| vec![TermId(i as u32)]).collect(),
            "replica-equivalence-fixture",
            2.0,
        );
        let segment_config = SegmentConfig {
            block_len: 3,
            tail_threshold: 2,
            max_segment_elems: 12,
            max_segments: 2,
            max_payload_bytes: u32::MAX as usize,
        };
        let spill_config = SpillConfig {
            resident_budget_bytes: 0,
            page_cache_pages: 2,
            ..SpillConfig::default().without_tiering()
        };
        let durable_config = DurableConfig {
            sync: SyncPolicy::Never,
            checkpoint_wal_bytes: 1 << 30,
        };
        let index = OrderedIndex::from_parts(lists.to_vec(), plan);
        let oracle = SingleMutexStore::new(index.clone());
        let root = replica_case_root();
        let primary = Arc::new(
            SpillStore::create_durable_with(
                index,
                root.join("primary"),
                2,
                spill_config,
                segment_config,
                durable_config,
                RealIo::shared(),
                false,
            )
            .unwrap(),
        );

        let source = ReplicationSource::new(Arc::clone(&primary)).unwrap();
        let transport = InProcessTransport::new(source);
        let mut replica = Replica::bootstrap(
            transport as Arc<dyn ReplicaTransport>,
            root.join("replica"),
            ReplicaConfig {
                spill: spill_config,
                durable: durable_config,
                batch_frames: 4,
                backoff_base: std::time::Duration::ZERO,
                backoff_cap: std::time::Duration::ZERO,
                ..ReplicaConfig::default()
            },
        )
        .unwrap();

        // The streamed phase: primary and oracle advance together, the
        // replica follows over the wire.
        let num_lists = lists.len();
        for (list, trs, group, ct) in streamed {
            let id = MergedListId((list % num_lists) as u64);
            let el = element(trs, group, ct);
            oracle.insert(id, el.clone()).unwrap();
            primary.insert(id, el).unwrap();
        }
        replica.catch_up(500).unwrap();
        prop_assert_eq!(replica.lag(), 0);

        let serving = replica.serving_store();
        for (list, offset, count, mask) in fetches {
            let fetch = RangedFetch {
                list: MergedListId((list % num_lists) as u64),
                offset,
                count,
            };
            let groups = groups_from_mask(mask);
            let want = oracle.fetch_ranged(&fetch, groups.as_deref());
            let got = serving.fetch_ranged(&fetch, groups.as_deref());
            match (want, got) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(&a.elements, &b.elements);
                    prop_assert_eq!(a.visible_total, b.visible_total);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => prop_assert!(false, "oracle and replica disagree: {:?} vs {:?}", a, b),
            }
            prop_assert_eq!(
                oracle.visible_len(fetch.list, groups.as_deref()).unwrap(),
                serving.visible_len(fetch.list, groups.as_deref()).unwrap()
            );
        }
        // Reads only: inserts are routed to the primary.
        prop_assert!(serving.insert(MergedListId(0), element(0.5, 0, b"w".to_vec())).is_err());
        drop(replica);
        drop(serving);
        let _ = std::fs::remove_dir_all(&root);
    }
}
