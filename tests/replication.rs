//! Fault-injected primary→replica replication tests.
//!
//! The acceptance bar for the replication stream is the same one the
//! durable store holds for crashes, extended across the wire: **every
//! observable replica state is an exact per-list prefix of the primary's
//! insert history** (verified against an in-memory `SingleMutexStore`
//! oracle), catch-up converges to element-for-element equality at
//! quiescence, and a replica lagging past its staleness bound returns the
//! typed `Degraded` error instead of stale answers.
//!
//! Faults come from two deterministic shims composed freely:
//! `FaultTransport` tears, bit-flips, duplicates and reorders frames,
//! drops connections and kills the stream after a budget; `FaultIo` (the
//! durable layer's crash shim) freezes the replica's *own disk* at an
//! exact IO boundary, modelling a replica process death mid-bootstrap or
//! mid-apply.  The kill-at-every-boundary loop sweeps the latter over
//! every recorded injection point, reopens the frozen directory with the
//! production IO path, re-subscribes and requires convergence.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use zerber_suite::corpus::{GroupId, TermId};
use zerber_suite::protocol::{AccessControl, IndexServer, ProtocolError, QueryRequest};
use zerber_suite::store::{
    DurableConfig, FaultIo, FaultMode, FaultPlan, FaultTransport, InProcessTransport, ListStore,
    PageIo, PumpOutcome, RangedFetch, RealIo, Replica, ReplicaConfig, ReplicaTransport,
    ReplicationSource, SegmentConfig, SingleMutexStore, SpillConfig, SpillStore, StoreError,
    SyncPolicy,
};
use zerber_suite::zerber::{EncryptedElement, MergePlan, MergedListId};
use zerber_suite::zerber_r::{OrderedElement, OrderedIndex};

const NUM_LISTS: usize = 4;
const NUM_SHARDS: usize = 2;

fn element(trs: f64, group: u32, ct: &[u8]) -> OrderedElement {
    let group = GroupId(group % 4);
    OrderedElement {
        trs,
        group,
        sealed: EncryptedElement {
            group,
            ciphertext: ct.to_vec(),
        },
    }
}

fn fixture_index(seeded: bool) -> OrderedIndex {
    let plan = MergePlan::from_term_lists(
        (0..NUM_LISTS).map(|i| vec![TermId(i as u32)]).collect(),
        "replication-fixture",
        2.0,
    );
    let lists = (0..NUM_LISTS)
        .map(|l| {
            if !seeded {
                return Vec::new();
            }
            (0..3)
                .map(|i| element(90.0 - 10.0 * i as f64 - l as f64, (l + i) as u32, b"seed"))
                .collect()
        })
        .collect();
    OrderedIndex::from_parts(lists, plan)
}

fn segment_config() -> SegmentConfig {
    SegmentConfig {
        block_len: 3,
        tail_threshold: 2,
        max_segment_elems: 12,
        max_segments: 2,
        max_payload_bytes: u32::MAX as usize,
    }
}

fn spill_config() -> SpillConfig {
    SpillConfig {
        resident_budget_bytes: 0,
        page_cache_pages: 2,
        ..SpillConfig::default().without_tiering()
    }
}

fn durable_config() -> DurableConfig {
    DurableConfig {
        sync: SyncPolicy::Always,
        // Checkpoints in these tests are explicit, so every WAL reset (and
        // therefore every forced re-snapshot) is placed by the test itself.
        checkpoint_wal_bytes: 1 << 30,
    }
}

/// Zero-delay backoff (deterministic tests never sleep), small batches so
/// catch-up takes several polls.
fn replica_config() -> ReplicaConfig {
    ReplicaConfig {
        spill: spill_config(),
        durable: durable_config(),
        max_lag: 1 << 20,
        batch_frames: 5,
        backoff_base: Duration::ZERO,
        backoff_cap: Duration::ZERO,
        max_attempts: 64,
    }
}

/// All replica (and primary) roots live under `$TMPDIR/zerber-replica`, the
/// staging tree the repo's hygiene guard sweeps for leaks.
fn test_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("zerber-replica")
        .join(format!("{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn create_primary(dir: &Path, index: OrderedIndex) -> Arc<SpillStore> {
    Arc::new(
        SpillStore::create_durable_with(
            index,
            dir,
            NUM_SHARDS,
            spill_config(),
            segment_config(),
            durable_config(),
            RealIo::shared(),
            false,
        )
        .unwrap(),
    )
}

/// The deterministic insert history: interleaved across all lists, TRS
/// values landing above, between and below the seeded elements.
fn insert_history() -> Vec<(usize, OrderedElement)> {
    (0..18usize)
        .map(|i| {
            let list = i % NUM_LISTS;
            let trs = 95.0 - 6.0 * i as f64;
            (list, element(trs, i as u32, format!("r{i:02}").as_bytes()))
        })
        .collect()
}

/// Per-list oracle states: `states[l][k]` is list `l` after its first `k`
/// inserts from the history.  Replication applies per-shard WAL order, and
/// a list lives in exactly one shard, so any observable replica list must
/// equal one of these prefixes exactly.
fn oracle_states(index: &OrderedIndex) -> Vec<Vec<Vec<OrderedElement>>> {
    let oracle = SingleMutexStore::new(index.clone());
    let mut states: Vec<Vec<Vec<OrderedElement>>> = (0..NUM_LISTS)
        .map(|l| vec![oracle.snapshot_list(MergedListId(l as u64)).unwrap()])
        .collect();
    for (list, el) in insert_history() {
        let id = MergedListId(list as u64);
        oracle.insert(id, el).unwrap();
        states[list].push(oracle.snapshot_list(id).unwrap());
    }
    states
}

/// Every list of `store` must be an exact prefix of its insert history.
fn assert_prefix(store: &SpillStore, states: &[Vec<Vec<OrderedElement>>], ctx: &str) {
    for (l, list_states) in states.iter().enumerate() {
        let got = store.snapshot_list(MergedListId(l as u64)).unwrap();
        assert!(
            list_states.contains(&got),
            "{ctx}: list {l} is not a prefix of its history ({} elements)",
            got.len()
        );
    }
}

/// Every list of `store` must equal the final oracle state exactly.
fn assert_converged(store: &SpillStore, states: &[Vec<Vec<OrderedElement>>], ctx: &str) {
    for (l, list_states) in states.iter().enumerate() {
        assert_eq!(
            &store.snapshot_list(MergedListId(l as u64)).unwrap(),
            list_states.last().unwrap(),
            "{ctx}: list {l} did not converge to the primary's state"
        );
    }
}

/// Baseline: bootstrap from a snapshot mid-history, stream the rest over a
/// clean in-process transport, converge to element-for-element equality.
#[test]
fn replica_bootstraps_streams_and_matches_the_oracle() {
    let index = fixture_index(true);
    let states = oracle_states(&index);
    let root = test_root("baseline");
    let primary = create_primary(&root.join("primary"), index);
    let history = insert_history();
    let (before, after) = history.split_at(history.len() / 2);
    for (list, el) in before {
        primary
            .insert(MergedListId(*list as u64), el.clone())
            .unwrap();
    }

    let source = ReplicationSource::new(Arc::clone(&primary)).unwrap();
    let transport = InProcessTransport::new(source);
    let mut replica = Replica::bootstrap(
        transport as Arc<dyn ReplicaTransport>,
        root.join("replica"),
        replica_config(),
    )
    .unwrap();
    // The snapshot alone carries the primary's exact mid-history state.
    assert_prefix(&replica.store(), &states, "post-bootstrap");
    assert_eq!(replica.lag(), 0);
    assert_eq!(replica.applied_seqs().len(), NUM_SHARDS);

    for (list, el) in after {
        primary
            .insert(MergedListId(*list as u64), el.clone())
            .unwrap();
    }
    replica.catch_up(200).unwrap();
    assert_converged(&replica.store(), &states, "post-catch-up");
    assert_eq!(replica.lag(), 0);
    let stats = replica.stats();
    assert_eq!(stats.frames_streamed, after.len() as u64);
    assert_eq!(stats.frames_skipped, 0);
    assert_eq!(stats.resnapshots, 0);

    // The serving wrapper answers like the store it fronts and refuses
    // writes.
    let serving = replica.serving_store();
    let list = MergedListId(0);
    let fetch = RangedFetch {
        list,
        offset: 0,
        count: 5,
    };
    assert_eq!(
        serving.fetch_ranged(&fetch, None).unwrap(),
        primary.fetch_ranged(&fetch, None).unwrap()
    );
    assert!(serving.insert(list, element(0.1, 0, b"nope")).is_err());
    // Replica-side durable metrics pass through: streamed frames were
    // re-logged into the replica's own WAL.
    assert!(serving.wal_appends() >= after.len() as u64);
    let _ = fs::remove_dir_all(&root);
}

/// The full transport fault matrix — torn frames, bit flips, duplicates,
/// reordering and disconnects all active at once.  After *every* pump the
/// replica must be an exact per-list prefix of the history; at quiescence
/// it must equal the primary exactly, with duplicates metered as skips and
/// disconnects metered as reconnects.
#[test]
fn fault_matrix_keeps_every_replica_state_a_prefix_of_history() {
    let index = fixture_index(true);
    let states = oracle_states(&index);
    let root = test_root("fault-matrix");
    let primary = create_primary(&root.join("primary"), index);
    let source = ReplicationSource::new(Arc::clone(&primary)).unwrap();
    let faults = FaultTransport::new(
        InProcessTransport::new(source) as Arc<dyn ReplicaTransport>,
        FaultPlan {
            tear_every: 3,
            flip_every: 5,
            duplicate_every: 4,
            reorder_every: 2,
            disconnect_every: 3,
            ..FaultPlan::default()
        },
    );
    let mut replica = Replica::bootstrap(
        Arc::clone(&faults) as Arc<dyn ReplicaTransport>,
        root.join("replica"),
        replica_config(),
    )
    .unwrap();

    for (list, el) in insert_history() {
        primary.insert(MergedListId(list as u64), el).unwrap();
        match replica.pump().unwrap() {
            PumpOutcome::Resnapshotted => panic!("clean history must never need a re-snapshot"),
            PumpOutcome::Progress { .. }
            | PumpOutcome::Disconnected { .. }
            | PumpOutcome::CaughtUp => {}
        }
        assert_prefix(&replica.store(), &states, "mid-stream");
    }
    // Quiescence: the primary stops writing, the replica must converge.
    for _ in 0..500 {
        if matches!(replica.pump().unwrap(), PumpOutcome::CaughtUp) {
            break;
        }
    }
    assert_converged(&replica.store(), &states, "quiescence");
    let stats = replica.stats();
    assert_eq!(stats.lag, 0);
    assert_eq!(stats.resnapshots, 0, "no history gap, no re-snapshot");
    assert!(stats.frames_skipped > 0, "duplicates must be metered");
    assert!(stats.reconnects > 0, "disconnects must be metered");
    assert!(
        faults.frames_delivered() > 18,
        "faults forced retransmission"
    );

    // The replica's own durable root survives all of it: reopen from disk
    // and verify the converged state again through the full recovery path.
    drop(replica);
    let reopened = Replica::reopen(
        faults as Arc<dyn ReplicaTransport>,
        root.join("replica"),
        replica_config(),
    )
    .unwrap();
    assert_converged(&reopened.store(), &states, "reopened");
    let _ = fs::remove_dir_all(&root);
}

/// A checkpoint on the primary resets its WAL; a replica whose position
/// predates the reset can no longer be served a tail and must be told to
/// re-snapshot — never silently skipped past the gap.
#[test]
fn checkpoint_gap_forces_a_resnapshot_instead_of_divergence() {
    let index = fixture_index(true);
    let states = oracle_states(&index);
    let root = test_root("resnapshot");
    let primary = create_primary(&root.join("primary"), index);
    let source = ReplicationSource::new(Arc::clone(&primary)).unwrap();
    let transport = InProcessTransport::new(source);
    let mut replica = Replica::bootstrap(
        transport as Arc<dyn ReplicaTransport>,
        root.join("replica"),
        replica_config(),
    )
    .unwrap();

    // The primary advances AND checkpoints: the WAL records the replica
    // needs are folded into the checkpoint and gone from the log.
    for (list, el) in insert_history() {
        primary.insert(MergedListId(list as u64), el).unwrap();
    }
    primary.checkpoint().unwrap();

    let outcome = replica.pump().unwrap();
    assert_eq!(outcome, PumpOutcome::Resnapshotted);
    assert_converged(&replica.store(), &states, "post-resnapshot");
    let stats = replica.stats();
    assert_eq!(stats.resnapshots, 1);
    assert_eq!(stats.lag, 0);
    // The superseded generation directory was cleaned up.
    assert!(
        !root.join("replica").join("gen-0").exists(),
        "stale generation left behind"
    );
    assert!(root.join("replica").join("gen-1").exists());
    let _ = fs::remove_dir_all(&root);
}

/// Bounded staleness: a replica that cannot apply (every frame torn) sees
/// the primary's head advance past `max_lag` and must answer reads with
/// the typed `Degraded` error — through the store trait AND the protocol
/// server — until it catches up again.
#[test]
fn lagging_replica_degrades_reads_until_it_catches_up() {
    let index = fixture_index(true);
    let states = oracle_states(&index);
    let root = test_root("degraded");
    let primary = create_primary(&root.join("primary"), index);
    let source = ReplicationSource::new(Arc::clone(&primary)).unwrap();
    let faults = FaultTransport::new(
        InProcessTransport::new(Arc::clone(&source)) as Arc<dyn ReplicaTransport>,
        FaultPlan {
            tear_every: 1, // every frame torn: heads advance, apply cannot
            ..FaultPlan::default()
        },
    );
    let mut config = replica_config();
    config.max_lag = 2;
    let mut replica = Replica::bootstrap(
        faults as Arc<dyn ReplicaTransport>,
        root.join("replica"),
        config.clone(),
    )
    .unwrap();

    let history = insert_history();
    for (list, el) in &history {
        primary
            .insert(MergedListId(*list as u64), el.clone())
            .unwrap();
    }
    assert!(matches!(
        replica.pump().unwrap(),
        PumpOutcome::Disconnected { .. }
    ));
    let lag = replica.lag();
    assert!(lag > 2, "torn stream must leave the replica lagging: {lag}");

    // Store-level guard: typed error, not stale data.
    let serving = replica.serving_store();
    let fetch = RangedFetch {
        list: MergedListId(0),
        offset: 0,
        count: 3,
    };
    match serving.fetch_ranged(&fetch, None) {
        Err(StoreError::Degraded { lag: l, max_lag }) => {
            assert_eq!(l, lag);
            assert_eq!(max_lag, 2);
        }
        other => panic!("expected Degraded, got {other:?}"),
    }

    // Protocol-level guard: the server fronting the replica returns the
    // typed Degraded response and reports the lag gauge in its stats.
    let mut acl = AccessControl::new(b"replica-degraded");
    acl.register_user("reader", &[GroupId(0), GroupId(1), GroupId(2), GroupId(3)]);
    let server = IndexServer::with_store(Box::new(replica.serving_store()), acl);
    let token = server.acl().issue_token("reader");
    let request = QueryRequest {
        user: "reader".into(),
        list: 0,
        offset: 0,
        cursor: 0,
        count: 3,
        k: 3,
    };
    match server.handle_query(&request, &token) {
        Err(ProtocolError::Degraded { lag: l, max_lag }) => {
            assert_eq!(l, lag);
            assert_eq!(max_lag, 2);
        }
        other => panic!("expected protocol Degraded, got {other:?}"),
    }
    assert_eq!(server.stats().replica_lag, lag);

    // Recovery: reopen the same root behind a clean transport, catch up,
    // and the exact same read serves — fresh data, not an error.
    drop(replica);
    let clean = InProcessTransport::new(source);
    let mut healed = Replica::reopen(
        clean as Arc<dyn ReplicaTransport>,
        root.join("replica"),
        config,
    )
    .unwrap();
    healed.catch_up(500).unwrap();
    assert_converged(&healed.store(), &states, "healed");
    let serving = healed.serving_store();
    assert_eq!(
        serving.fetch_ranged(&fetch, None).unwrap(),
        primary.fetch_ranged(&fetch, None).unwrap()
    );
    assert_eq!(serving.replica_lag(), 0);
    let _ = fs::remove_dir_all(&root);
}

/// One run of the replication workload with the replica's own disk frozen
/// at IO budget `at` (`u64::MAX` = never): bootstrap mid-history, stream
/// the rest in chunks.  Returns the probe IO shim so the caller can read
/// the recorded boundaries.
fn run_replica_until_frozen(root: &Path, at: u64) -> Arc<FaultIo> {
    let primary_dir = root.join("primary");
    let replica_dir = root.join("replica");
    let _ = fs::remove_dir_all(&primary_dir);
    let _ = fs::remove_dir_all(&replica_dir);
    let primary = create_primary(&primary_dir, fixture_index(true));
    let source = ReplicationSource::new(Arc::clone(&primary)).unwrap();
    let transport = InProcessTransport::new(source);
    let io = FaultIo::new(FaultMode::KillAfter(at));
    // A bootstrap refused because the disk died mid-write is a legal
    // outcome; the recovery phase below must cope with whatever is on disk.
    let mut replica = Replica::bootstrap_with(
        transport as Arc<dyn ReplicaTransport>,
        &replica_dir,
        replica_config(),
        io.clone() as Arc<dyn PageIo>,
    )
    .ok();
    // Stream in chunks; the frozen disk silently swallows the replica's own
    // writes (exactly like a crashed process), the in-memory side keeps
    // going — whatever made it to disk before the freeze is what recovery
    // gets.
    for chunk in insert_history().chunks(6) {
        for (list, el) in chunk {
            primary
                .insert(MergedListId(*list as u64), el.clone())
                .unwrap();
        }
        if let Some(r) = replica.as_mut() {
            let _ = r.catch_up(500);
        }
    }
    io
}

/// Satellite acceptance loop: crash the replica's disk at every recorded
/// IO boundary (and one unit before it, to land inside multi-byte writes),
/// reopen the frozen directory with the production IO path, audit the
/// recovered state against the oracle prefix property, re-subscribe and
/// require element-for-element convergence — including a post-recovery
/// write round-tripping primary → replica.
#[test]
fn kill_at_every_boundary_replica_recovers_and_catches_up() {
    let index = fixture_index(true);
    let states = oracle_states(&index);
    let root = test_root("kill-loop");

    // Probe run: unlimited budget records every IO boundary of the replica's
    // own disk (snapshot install, WAL appends from applied frames, page
    // spills).
    let probe_io = run_replica_until_frozen(&root, u64::MAX);
    let mut points: Vec<u64> = probe_io.op_boundaries();
    points.extend(
        probe_io
            .op_boundaries()
            .iter()
            .filter_map(|b| b.checked_sub(1)),
    );
    points.sort_unstable();
    points.dedup();
    assert!(
        points.len() > 40,
        "probe recorded suspiciously few injection points: {}",
        points.len()
    );

    for &at in &points {
        let io = run_replica_until_frozen(&root, at);
        assert!(at == u64::MAX || io.crashed() || io.spent() <= at);
        let replica_dir = root.join("replica");

        // Reopen whatever survived with the production IO path.  A root
        // with no recoverable generation (the freeze hit before the first
        // durable byte) bootstraps from scratch instead — either way the
        // replica must come back.
        let primary = Arc::new(
            SpillStore::open_with_io(
                root.join("primary"),
                spill_config(),
                durable_config(),
                RealIo::shared(),
            )
            .unwrap(),
        );
        let source = ReplicationSource::new(Arc::clone(&primary)).unwrap();
        let transport = InProcessTransport::new(source);
        let mut replica = match Replica::reopen(
            Arc::clone(&transport) as Arc<dyn ReplicaTransport>,
            &replica_dir,
            replica_config(),
        ) {
            Ok(replica) => {
                // The recovered (pre-catch-up) state must already be an
                // exact prefix of the history.
                assert_prefix(&replica.store(), &states, &format!("recovered at {at}"));
                replica
            }
            Err(_) => Replica::bootstrap(
                transport as Arc<dyn ReplicaTransport>,
                &replica_dir,
                replica_config(),
            )
            .unwrap_or_else(|e| panic!("re-bootstrap after freeze at {at} failed: {e}")),
        };
        replica
            .catch_up(1000)
            .unwrap_or_else(|e| panic!("catch-up after freeze at {at} failed: {e}"));
        assert_converged(&replica.store(), &states, &format!("caught up at {at}"));

        // The recovered replica keeps following: a fresh primary write
        // round-trips.
        let probe_el = element(1.5, 0, b"post-crash");
        primary.insert(MergedListId(0), probe_el.clone()).unwrap();
        replica.catch_up(100).unwrap();
        assert!(replica
            .store()
            .snapshot_list(MergedListId(0))
            .unwrap()
            .iter()
            .any(|e| e.sealed.ciphertext == b"post-crash"));
    }
    let _ = fs::remove_dir_all(&root);
}

/// The disconnect-storm stress case verify.sh loops 5× under `--release`:
/// rounds of primary writes against a transport that disconnects every
/// other poll and duplicates/reorders what it does deliver, with a
/// transport kill (process death) and reopen in the middle.
#[test]
fn disconnect_storm_replication_converges() {
    let root = test_root("disconnect-storm");
    let primary = create_primary(&root.join("primary"), fixture_index(true));
    let source = ReplicationSource::new(Arc::clone(&primary)).unwrap();
    let plan = FaultPlan {
        tear_every: 7,
        duplicate_every: 3,
        reorder_every: 2,
        disconnect_every: 2,
        kill_after: Some(40),
        ..FaultPlan::default()
    };
    let faults = FaultTransport::new(
        InProcessTransport::new(source) as Arc<dyn ReplicaTransport>,
        plan,
    );
    let mut replica = Replica::bootstrap(
        Arc::clone(&faults) as Arc<dyn ReplicaTransport>,
        root.join("replica"),
        replica_config(),
    )
    .unwrap();

    let history = insert_history();
    let mut killed = false;
    for round in 0..6 {
        for (list, el) in &history {
            let mut el = el.clone();
            el.trs -= round as f64 * 0.001; // distinct elements per round
            primary.insert(MergedListId(*list as u64), el).unwrap();
        }
        // Pump through the storm until this round is fully replicated; a
        // transport kill models the replica process dying mid-storm — the
        // harness revives the transport and reopens the replica from its
        // own durable root.
        loop {
            match replica.pump() {
                Ok(PumpOutcome::CaughtUp) => break,
                Ok(_) => {}
                Err(_) => {
                    assert!(faults.killed(), "only the injected kill may error");
                    assert!(!killed, "the kill budget fires once");
                    killed = true;
                    faults.revive();
                    replica = Replica::reopen(
                        Arc::clone(&faults) as Arc<dyn ReplicaTransport>,
                        root.join("replica"),
                        replica_config(),
                    )
                    .unwrap();
                }
            }
        }
        // Converged mid-storm: every list equals the primary exactly.
        for l in 0..NUM_LISTS as u64 {
            let id = MergedListId(l);
            assert_eq!(
                replica.store().snapshot_list(id).unwrap(),
                primary.snapshot_list(id).unwrap(),
                "round {round}: list {l} diverged"
            );
        }
    }
    assert!(killed, "the kill budget must have fired");
    assert!(replica.stats().reconnects > 0);
    assert!(replica.stats().frames_skipped > 0);
    let _ = fs::remove_dir_all(&root);
}

/// Graceful-shutdown durability companion (the satellite fix lives in the
/// store's drop path): a replica shut down cleanly mid-stream loses
/// nothing it acknowledged, even under `SyncPolicy::EveryN` batching.
#[test]
fn clean_replica_shutdown_keeps_every_applied_frame() {
    let index = fixture_index(true);
    let states = oracle_states(&index);
    let root = test_root("clean-shutdown");
    let primary = create_primary(&root.join("primary"), index);
    let source = ReplicationSource::new(Arc::clone(&primary)).unwrap();
    let transport = InProcessTransport::new(source);
    let mut config = replica_config();
    // Batched fsync: without the drop-path flush, up to 999 applied frames
    // would evaporate on a clean shutdown.
    config.durable = DurableConfig {
        sync: SyncPolicy::EveryN(1000),
        checkpoint_wal_bytes: 1 << 30,
    };
    let mut replica = Replica::bootstrap(
        Arc::clone(&transport) as Arc<dyn ReplicaTransport>,
        root.join("replica"),
        config.clone(),
    )
    .unwrap();
    for (list, el) in insert_history() {
        primary.insert(MergedListId(list as u64), el).unwrap();
    }
    replica.catch_up(500).unwrap();
    assert_converged(&replica.store(), &states, "pre-shutdown");
    drop(replica);

    let reopened = Replica::reopen(
        transport as Arc<dyn ReplicaTransport>,
        root.join("replica"),
        config,
    )
    .unwrap();
    assert_converged(&reopened.store(), &states, "post-clean-shutdown");
    assert_eq!(reopened.lag(), 0);
    let _ = fs::remove_dir_all(&root);
}

/// Replication refuses a non-durable primary: without a WAL and manifests
/// there is nothing to snapshot or stream.
#[test]
fn ephemeral_primary_is_refused() {
    let store = SpillStore::in_temp_dir_with(
        fixture_index(true),
        NUM_SHARDS,
        spill_config(),
        segment_config(),
    )
    .unwrap();
    assert!(ReplicationSource::new(Arc::new(store)).is_err());
}
