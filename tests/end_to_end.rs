//! End-to-end integration test: the complete Zerber+R pipeline (synthetic
//! corpus → RSTF training → BFM merge → encrypted ordered index → untrusted
//! server → client retrieval) must return exactly the documents an ordinary
//! plaintext inverted index would return for single-term top-k queries, while
//! keeping the confidentiality invariants.

use std::collections::HashMap;

use zerber_suite::corpus::{DatasetProfile, GroupId};
use zerber_suite::protocol::{AccessControl, Client, IndexServer};
use zerber_suite::workload::{QueryLogConfig, TestBed, TestBedConfig};
use zerber_suite::zerber_r::{GrowthPolicy, RetrievalConfig};

fn bed() -> &'static TestBed {
    use std::sync::OnceLock;
    static BED: OnceLock<TestBed> = OnceLock::new();
    BED.get_or_init(|| {
        TestBed::build(TestBedConfig::small(DatasetProfile::StudIp)).expect("test bed builds")
    })
}

#[test]
fn confidential_topk_matches_plaintext_topk_for_many_terms() {
    let bed = bed();
    let k = 10usize;
    let order = bed.stats.terms_by_doc_freq();
    // Frequent, mid-frequency and rare terms.
    let picks: Vec<_> = order
        .iter()
        .step_by((order.len() / 60).max(1))
        .copied()
        .take(60)
        .collect();
    let mut trained_terms = 0usize;
    for term in picks {
        let confidential = zerber_suite::zerber_r::retrieve_topk(
            &bed.index,
            term,
            &bed.all_memberships,
            &RetrievalConfig::for_k(k),
        )
        .expect("retrieval succeeds");
        let plaintext = bed.plain_index.query_term(term, k).expect("term indexed");
        assert_eq!(
            confidential.results.len(),
            plaintext.len().min(k),
            "result count for term {term}"
        );
        if bed.model.rstf(term).is_some() {
            // Terms seen during RSTF training: the monotone transformation
            // preserves the exact plaintext ranking.
            trained_terms += 1;
            for (got, want) in confidential.results.iter().zip(plaintext.iter()) {
                assert!(
                    (got.1 - want.score).abs() < 1e-9,
                    "score mismatch for term {term}: {} vs {}",
                    got.1,
                    want.score
                );
            }
        } else {
            // Terms unseen during training carry a random TRS (Section 5.1.1:
            // "assumed to be rare"): every returned result must still be a
            // genuine posting of the term.
            let valid: std::collections::HashSet<_> = bed
                .plain_index
                .posting_list(term)
                .unwrap()
                .iter()
                .map(|p| p.doc)
                .collect();
            for &(doc, _) in &confidential.results {
                assert!(
                    valid.contains(&doc),
                    "spurious result for untrained term {term}"
                );
            }
        }
    }
    assert!(
        trained_terms >= 20,
        "most sampled terms should have a trained RSTF, got {trained_terms}"
    );
}

#[test]
fn index_storage_matches_one_score_per_element_budget() {
    let bed = bed();
    let plain_report = bed.plain_index.size_report();
    let ordered_report = bed.index.size_report();
    // Section 6.3: Zerber+R stores exactly one ranking value (the TRS) per
    // posting element, like the ordinary index — same element counts, zero
    // overhead in the paper's 64-bit-per-element accounting.
    assert_eq!(plain_report.num_postings, ordered_report.num_postings);
    assert_eq!(plain_report.plain_bytes, ordered_report.plain_bytes);
    assert!((ordered_report.overhead_vs(&plain_report)).abs() < 1e-12);
}

#[test]
fn ordering_and_confidentiality_invariants_hold_after_build() {
    let bed = bed();
    assert!(bed.index.verify_ordering(), "lists must stay TRS-sorted");
    let r = zerber_suite::zerber::ConfidentialityParam::new(bed.config.r).unwrap();
    let reports = bed
        .plan
        .verify(&bed.stats, r)
        .expect("plan is r-confidential");
    assert_eq!(reports.len(), bed.plan.num_lists());
    for report in reports {
        assert!(report.satisfied);
        assert!(report.mass + 1e-12 >= report.required);
    }
}

#[test]
fn server_protocol_preserves_results_and_access_control() {
    let bed = bed();
    let mut acl = AccessControl::new(b"it-dept");
    let all_groups: Vec<GroupId> = (0..bed.corpus.num_groups() as u32).map(GroupId).collect();
    acl.register_user("john", &all_groups);
    acl.register_user("intern", &[GroupId(0)]);
    let server = IndexServer::new(bed.index.clone(), acl);

    let john = Client::new(
        "john",
        server.acl().issue_token("john"),
        bed.all_memberships.clone(),
    );
    let intern_keys: HashMap<GroupId, _> = [(GroupId(0), bed.master.group_keys(0))].into();
    let intern = Client::new("intern", server.acl().issue_token("intern"), intern_keys);

    let term = bed.stats.terms_by_doc_freq()[1];
    let config = RetrievalConfig::for_k(10);
    let john_out = john
        .query(&server, &bed.plan, term, &config)
        .expect("john queries");
    let intern_out = intern
        .query(&server, &bed.plan, term, &config)
        .expect("intern queries");

    // John sees the same ranking the core retrieval produces.
    let reference =
        zerber_suite::zerber_r::retrieve_topk(&bed.index, term, &bed.all_memberships, &config)
            .unwrap();
    assert_eq!(john_out.results, reference.results);

    // The intern only ever receives group-0 documents.
    for &(doc, _) in &intern_out.results {
        assert_eq!(bed.corpus.doc(doc).unwrap().group, GroupId(0));
    }
    // And the server's byte counters reflect both sessions.
    let stats = server.stats();
    assert_eq!(
        stats.requests_served as usize,
        john_out.requests + intern_out.requests
    );
    assert_eq!(
        stats.bytes_out as usize,
        john_out.bytes_received + intern_out.bytes_received
    );
}

#[test]
fn workload_replay_reproduces_the_b_equals_k_sweet_spot_shape() {
    // Figures 11/12 at integration-test scale: the average number of requests
    // falls as b grows, while the bandwidth overhead is minimal for b <= k
    // and grows once b exceeds k.
    let bed = bed();
    let log = bed
        .query_log(&QueryLogConfig {
            distinct_terms: 150,
            total_queries: 20_000,
            sample_queries: 50,
            ..QueryLogConfig::default()
        })
        .expect("query log");
    let k = 10;
    let mut avbo = Vec::new();
    let mut requests = Vec::new();
    for b in [k, 5 * k, 10 * k] {
        let samples = bed
            .run_workload(&log, k, b, GrowthPolicy::Doubling)
            .expect("workload runs");
        avbo.push(zerber_suite::workload::average_bandwidth_overhead(
            &samples, k,
        ));
        requests.push(zerber_suite::workload::average_requests(&samples));
    }
    assert!(
        avbo[0] < avbo[1] && avbo[1] < avbo[2],
        "bandwidth overhead must grow once b exceeds k: {avbo:?}"
    );
    assert!(
        requests[0] >= requests[1] && requests[1] >= requests[2],
        "request counts must not increase with larger b: {requests:?}"
    );
}

#[test]
fn multi_term_queries_split_into_single_term_queries() {
    let bed = bed();
    let order = bed.stats.terms_by_doc_freq();
    let terms = [order[0], order[2], order[4]];
    let (merged, per_term) = zerber_suite::zerber_r::retrieve_multi_term(
        &bed.index,
        &terms,
        &bed.all_memberships,
        &RetrievalConfig::for_k(10),
    )
    .expect("multi-term query");
    assert_eq!(per_term.len(), 3);
    assert!(merged.len() <= 10);
    assert!(merged.windows(2).all(|w| w[0].1 >= w[1].1));
    // Every merged result must appear in at least one per-term result list.
    for &(doc, _) in &merged {
        assert!(per_term
            .iter()
            .any(|o| o.results.iter().any(|&(d, _)| d == doc)));
    }
}
