//! Property-based tests (proptest) on the core data structures and
//! invariants: compression codecs, AEAD, RSTF monotonicity/range, top-k
//! selection, posting-list ordering, r-confidentiality arithmetic and the
//! protocol message codec.

use proptest::prelude::*;

use zerber_suite::corpus::{DocId, GroupId, TermId};
use zerber_suite::crypto::AeadKey;
use zerber_suite::index::{compress, Posting, PostingList, ScoredDoc, TopK};
use zerber_suite::protocol::{QueryResponse, WireElement};
use zerber_suite::zerber::PostingPayload;
use zerber_suite::zerber_r::{uniformity_variance, Rstf, RstfKernel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn varint_roundtrips_any_u64(value in any::<u64>()) {
        let mut buf = Vec::new();
        compress::write_varint(&mut buf, value);
        let (back, pos) = compress::read_varint(&buf, 0).unwrap();
        prop_assert_eq!(back, value);
        prop_assert_eq!(pos, buf.len());
        prop_assert!(buf.len() <= 10);
    }

    #[test]
    fn posting_list_compression_roundtrips(
        postings in proptest::collection::vec((0u32..500_000, 1u32..1000, 0.0f64..1.0), 0..200)
    ) {
        // Deduplicate doc ids: a posting list holds one element per document.
        let mut seen = std::collections::HashSet::new();
        let unique: Vec<Posting> = postings
            .into_iter()
            .filter(|(d, _, _)| seen.insert(*d))
            .map(|(d, tf, s)| Posting::new(DocId(d), tf, s))
            .collect();
        let list = PostingList::from_postings(unique);
        let encoded = compress::encode_posting_list(&list);
        let decoded = compress::decode_posting_list(&encoded).unwrap();
        prop_assert_eq!(decoded.len(), list.len());
        for (a, b) in list.iter().zip(decoded.iter()) {
            prop_assert_eq!(a.doc, b.doc);
            prop_assert_eq!(a.tf, b.tf);
            prop_assert!((a.score - b.score).abs() < 2e-6);
        }
    }

    #[test]
    fn aead_roundtrips_and_rejects_bitflips(
        enc_key in any::<[u8; 32]>(),
        mac_key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        plaintext in proptest::collection::vec(any::<u8>(), 0..256),
        aad in proptest::collection::vec(any::<u8>(), 0..32),
        flip in any::<(usize, u8)>()
    ) {
        let key = AeadKey::new(enc_key, mac_key);
        let sealed = key.seal(&nonce, &plaintext, &aad).unwrap();
        prop_assert_eq!(key.open(&sealed, &aad).unwrap(), plaintext);
        // Any single-bit corruption must be rejected.
        let mut corrupted = sealed.clone();
        let idx = flip.0 % corrupted.len();
        let bit = 1u8 << (flip.1 % 8);
        corrupted[idx] ^= bit;
        prop_assert!(key.open(&corrupted, &aad).is_err());
    }

    #[test]
    fn posting_payload_roundtrips(term in any::<u32>(), doc in any::<u32>(), tf in any::<u32>(), len in any::<u32>()) {
        let payload = PostingPayload {
            term: TermId(term),
            doc: DocId(doc),
            tf,
            doc_len: len,
        };
        let decoded = PostingPayload::decode(&payload.encode()).unwrap();
        prop_assert_eq!(decoded, payload);
    }

    #[test]
    fn rstf_is_monotone_bounded_and_order_preserving(
        training in proptest::collection::vec(0.0f64..1.0, 1..80),
        sigma in 1.0f64..2000.0,
        probes in proptest::collection::vec(-0.5f64..1.5, 2..40)
    ) {
        for kernel in [RstfKernel::Logistic, RstfKernel::Erf] {
            let rstf = Rstf::fit(&training, sigma, kernel).unwrap();
            let mut sorted_probes = probes.clone();
            sorted_probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut prev = f64::NEG_INFINITY;
            for &x in &sorted_probes {
                let y = rstf.transform(x);
                prop_assert!((0.0..=1.0).contains(&y), "out of range: {}", y);
                prop_assert!(y >= prev - 1e-12, "not monotone at {}", x);
                prev = y;
            }
        }
    }

    #[test]
    fn topk_agrees_with_full_sort(
        scores in proptest::collection::vec(0.0f64..1.0, 0..120),
        k in 1usize..20
    ) {
        let mut acc = TopK::new(k);
        for (i, &s) in scores.iter().enumerate() {
            acc.push(ScoredDoc::new(DocId(i as u32), s));
        }
        let got = acc.into_sorted();
        let mut expected: Vec<(f64, u32)> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as u32))
            .collect();
        expected.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        expected.truncate(k);
        prop_assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(expected.iter()) {
            prop_assert_eq!(g.doc.0, e.1);
            prop_assert!((g.score - e.0).abs() < 1e-12);
        }
    }

    #[test]
    fn posting_list_insert_keeps_descending_order(
        items in proptest::collection::vec((0u32..10_000, 0.0f64..1.0), 0..100)
    ) {
        let mut list = PostingList::new();
        for (i, (doc, score)) in items.iter().enumerate() {
            list.insert(Posting::new(DocId(*doc ^ (i as u32) << 16), 1, *score));
        }
        let scores: Vec<f64> = list.iter().map(|p| p.score).collect();
        prop_assert!(scores.windows(2).all(|w| w[0] >= w[1]));
        prop_assert_eq!(list.len(), items.len());
    }

    #[test]
    fn uniformity_variance_is_bounded_and_zero_for_perfect_uniform(n in 2usize..300) {
        let uniform: Vec<f64> = (1..=n).map(|i| i as f64 / (n as f64 + 1.0)).collect();
        prop_assert!(uniformity_variance(&uniform) < 1e-20);
        let constant = vec![0.5; n];
        let v = uniformity_variance(&constant);
        prop_assert!(v > 0.0);
        prop_assert!(v <= 0.26);
    }

    #[test]
    fn query_response_codec_roundtrips(
        elements in proptest::collection::vec((0.0f64..1.0, 0u32..16, 0usize..80), 0..40),
        total in any::<u64>(),
        cursor in any::<u64>()
    ) {
        let response = QueryResponse {
            elements: elements
                .into_iter()
                .map(|(trs, group, len)| WireElement {
                    trs,
                    group: GroupId(group),
                    ciphertext: vec![0x5a; len],
                })
                .collect(),
            visible_total: total,
            cursor,
        };
        let encoded = response.encode();
        prop_assert_eq!(encoded.len(), response.encoded_bytes());
        let decoded = QueryResponse::decode(&encoded).unwrap();
        prop_assert_eq!(decoded, response);
    }

    #[test]
    fn chacha_keystream_is_invertible(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        counter in any::<u32>(),
        data in proptest::collection::vec(any::<u8>(), 0..300)
    ) {
        let cipher = zerber_suite::crypto::ChaCha20::new(&key).unwrap();
        let ct = cipher.encrypt(&nonce, counter, &data).unwrap();
        let pt = cipher.encrypt(&nonce, counter, &ct).unwrap();
        prop_assert_eq!(pt, data.clone());
        if !data.is_empty() && data.iter().any(|&b| b != 0) {
            // The keystream must actually change the data (overwhelmingly likely).
            prop_assert!(ct != data || data.iter().all(|&b| b == 0));
        }
    }
}
