//! Server-level integration tests for the on-disk spill engine: the spill
//! server must answer byte-identically to the in-memory engines while most
//! of the sealed index lives in page files, and a corrupted or torn page on
//! disk must degrade exactly one request — the same per-request error
//! isolation contract the batched stream scheduler gives stale cursors.

use zerber_suite::corpus::DatasetProfile;
use zerber_suite::protocol::{IndexServer, ProtocolError, QueryRequest};
use zerber_suite::store::{ListStore, SegmentConfig, SpillConfig, SpillStore};
use zerber_suite::workload::{TestBed, TestBedConfig};
use zerber_suite::zerber::MergedListId;

fn request(user: &str, list: u64, count: u32) -> QueryRequest {
    QueryRequest {
        user: user.into(),
        list,
        offset: 0,
        cursor: 0,
        count,
        k: count,
    }
}

#[test]
fn spill_server_matches_the_sharded_server_and_meters_faults() {
    let bed = TestBed::build(TestBedConfig::small(DatasetProfile::StudIp)).expect("bed builds");
    let sharded = bed.build_server(4, 2);
    let spilled = bed.build_spill_server(4, 2);
    let token_a = sharded.acl().issue_token("user-0");
    let token_b = spilled.acl().issue_token("user-0");
    for list in 0..sharded.num_lists() as u64 {
        for offset in [0u64, 2, 7] {
            let req = QueryRequest {
                offset,
                ..request("user-0", list, 5)
            };
            let a = sharded.handle_query(&req, &token_a).unwrap();
            let b = spilled.handle_query(&req, &token_b).unwrap();
            assert_eq!(a.elements, b.elements, "list {list} offset {offset}");
            assert_eq!(a.visible_total, b.visible_total);
        }
    }
    // The default spill budget comfortably holds this small fixture: no
    // faults.  The interesting accounting lives in the tight-budget test
    // below; here we only pin that the counters exist end to end.
    let stats = spilled.stats();
    assert_eq!(stats.page_faults, spilled.store().page_faults());
    assert_eq!(stats.page_evictions, spilled.store().page_evictions());
}

#[test]
fn corrupt_pages_degrade_one_request_and_the_stream_round_isolates_it() {
    let bed = TestBed::build(TestBedConfig::small(DatasetProfile::StudIp)).expect("bed builds");
    // Build the spill store by hand so the page-file paths stay reachable
    // for corruption; zero budget + no cache forces every sealed read
    // through the (corruptible) disk.
    let store = SpillStore::in_temp_dir_with(
        bed.index.clone(),
        1,
        SpillConfig {
            resident_budget_bytes: 0,
            page_cache_pages: 0,
        },
        SegmentConfig::default(),
    )
    .expect("spill store builds");
    assert!(store.spilled_bytes() > 0);
    let paths = store.page_file_paths();
    assert_eq!(paths.len(), 1);

    // The page file is append-only in list order, so its first page belongs
    // to the first non-empty list: that is the victim.  Any later non-empty
    // list's pages sit past it and must survive.
    let non_empty: Vec<u64> = (0..store.num_lists() as u64)
        .filter(|&l| store.list_len(MergedListId(l)).unwrap() > 0)
        .collect();
    let (victim, survivor) = (non_empty[0], *non_empty.last().unwrap());
    assert_ne!(victim, survivor);
    let survivor_reference = store.snapshot_list(MergedListId(survivor)).unwrap();

    let mut acl = zerber_suite::protocol::AccessControl::new(b"spill-crash");
    let all_groups: Vec<_> = (0..bed.corpus.num_groups() as u32)
        .map(zerber_suite::corpus::GroupId)
        .collect();
    acl.register_user("user-0", &all_groups);
    let server = IndexServer::with_store(Box::new(store), acl);
    let token = server.acl().issue_token("user-0");

    // Flip bits inside the first page only: the victim's head segment is
    // now torn, every later page is untouched.
    let mut bytes = std::fs::read(&paths[0]).unwrap();
    for b in bytes.iter_mut().take(40).skip(4) {
        *b ^= 0xA5;
    }
    std::fs::write(&paths[0], &bytes).unwrap();

    // A cross-user stream round mixing the poisoned list with healthy
    // requests: the corrupt page fails its own request as a server-side
    // integrity error, everything else still answers.
    let round = vec![
        (request("user-0", victim, 5), token.clone()),
        (request("user-0", survivor, 5), token.clone()),
        (request("user-0", 999_999, 5), token.clone()),
    ];
    let results = server.handle_query_stream(&round);
    assert!(
        matches!(results[0], Err(ProtocolError::Core(_))),
        "corrupt page must surface as a server-side integrity error, got {:?}",
        results[0]
    );
    let ok = results[1].as_ref().expect("healthy list keeps serving");
    assert_eq!(
        ok.elements.len(),
        survivor_reference.len().min(5),
        "survivor list answers from its intact page"
    );
    assert!(matches!(results[2], Err(ProtocolError::UnknownList(_))));
    // Sequential queries see exactly the same isolation.
    assert!(server
        .handle_query(&request("user-0", victim, 5), &token)
        .is_err());
    assert!(server
        .handle_query(&request("user-0", survivor, 5), &token)
        .is_ok());
}
