//! Server-level integration tests for the on-disk spill engine: the spill
//! server must answer byte-identically to the in-memory engines while most
//! of the sealed index lives in page files, and a corrupted or torn page on
//! disk must degrade exactly one request — the same per-request error
//! isolation contract the batched stream scheduler gives stale cursors.

use zerber_suite::corpus::{DatasetProfile, GroupId};
use zerber_suite::protocol::{IndexServer, ProtocolError, QueryRequest};
use zerber_suite::store::{ListStore, RangedFetch, SegmentConfig, SpillConfig, SpillStore};
use zerber_suite::workload::{TestBed, TestBedConfig};
use zerber_suite::zerber::{EncryptedElement, MergedListId};
use zerber_suite::zerber_r::OrderedElement;

fn request(user: &str, list: u64, count: u32) -> QueryRequest {
    QueryRequest {
        user: user.into(),
        list,
        offset: 0,
        cursor: 0,
        count,
        k: count,
    }
}

#[test]
fn spill_server_matches_the_sharded_server_and_meters_faults() {
    let bed = TestBed::build(TestBedConfig::small(DatasetProfile::StudIp)).expect("bed builds");
    let sharded = bed.build_server(4, 2);
    let spilled = bed.build_spill_server(4, 2);
    let token_a = sharded.acl().issue_token("user-0");
    let token_b = spilled.acl().issue_token("user-0");
    for list in 0..sharded.num_lists() as u64 {
        for offset in [0u64, 2, 7] {
            let req = QueryRequest {
                offset,
                ..request("user-0", list, 5)
            };
            let a = sharded.handle_query(&req, &token_a).unwrap();
            let b = spilled.handle_query(&req, &token_b).unwrap();
            assert_eq!(a.elements, b.elements, "list {list} offset {offset}");
            assert_eq!(a.visible_total, b.visible_total);
        }
    }
    // The default spill budget comfortably holds this small fixture: no
    // faults.  The interesting accounting lives in the tight-budget test
    // below; here we only pin that the counters exist end to end.
    let stats = spilled.stats();
    assert_eq!(stats.page_faults, spilled.store().page_faults());
    assert_eq!(stats.page_evictions, spilled.store().page_evictions());
}

#[test]
fn corrupt_pages_degrade_one_request_and_the_stream_round_isolates_it() {
    let bed = TestBed::build(TestBedConfig::small(DatasetProfile::StudIp)).expect("bed builds");
    // Build the spill store by hand so the page-file paths stay reachable
    // for corruption; zero budget + no cache forces every sealed read
    // through the (corruptible) disk.
    let store = SpillStore::in_temp_dir_with(
        bed.index.clone(),
        1,
        SpillConfig {
            resident_budget_bytes: 0,
            page_cache_pages: 0,
            ..SpillConfig::default().without_tiering()
        },
        SegmentConfig::default(),
    )
    .expect("spill store builds");
    assert!(store.spilled_bytes() > 0);
    let paths = store.page_file_paths();
    assert_eq!(paths.len(), 1);

    // The page file is append-only in list order, so its first page belongs
    // to the first non-empty list: that is the victim.  Any later non-empty
    // list's pages sit past it and must survive.
    let non_empty: Vec<u64> = (0..store.num_lists() as u64)
        .filter(|&l| store.list_len(MergedListId(l)).unwrap() > 0)
        .collect();
    let (victim, survivor) = (non_empty[0], *non_empty.last().unwrap());
    assert_ne!(victim, survivor);
    let survivor_reference = store.snapshot_list(MergedListId(survivor)).unwrap();

    let mut acl = zerber_suite::protocol::AccessControl::new(b"spill-crash");
    let all_groups: Vec<_> = (0..bed.corpus.num_groups() as u32)
        .map(zerber_suite::corpus::GroupId)
        .collect();
    acl.register_user("user-0", &all_groups);
    let server = IndexServer::with_store(Box::new(store), acl);
    let token = server.acl().issue_token("user-0");

    // Flip bits inside the first page only: the victim's head segment is
    // now torn, every later page is untouched.
    let mut bytes = std::fs::read(&paths[0]).unwrap();
    for b in bytes.iter_mut().take(40).skip(4) {
        *b ^= 0xA5;
    }
    std::fs::write(&paths[0], &bytes).unwrap();

    // A cross-user stream round mixing the poisoned list with healthy
    // requests: the corrupt page fails its own request as a server-side
    // integrity error, everything else still answers.
    let round = vec![
        (request("user-0", victim, 5), token.clone()),
        (request("user-0", survivor, 5), token.clone()),
        (request("user-0", 999_999, 5), token.clone()),
    ];
    let results = server.handle_query_stream(&round);
    assert!(
        matches!(results[0], Err(ProtocolError::Core(_))),
        "corrupt page must surface as a server-side integrity error, got {:?}",
        results[0]
    );
    let ok = results[1].as_ref().expect("healthy list keeps serving");
    assert_eq!(
        ok.elements.len(),
        survivor_reference.len().min(5),
        "survivor list answers from its intact page"
    );
    assert!(matches!(results[2], Err(ProtocolError::UnknownList(_))));
    // Sequential queries see exactly the same isolation.
    assert!(server
        .handle_query(&request("user-0", victim, 5), &token)
        .is_err());
    assert!(server
        .handle_query(&request("user-0", survivor, 5), &token)
        .is_ok());
}

/// Compaction-under-load stress: reader threads hammer every list while the
/// writer interleaves interior inserts (which strand dead bytes) with
/// explicit page-file compaction passes — on top of the aggressive
/// automatic maintenance the tight tiering config already triggers.  Every
/// read must keep succeeding (pages are validated on the way in, so a torn
/// swap would surface as an error), and the final state must be ordered,
/// exactly charged and fully compacted.
#[test]
fn compaction_under_concurrent_load_never_tears_an_answer() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let bed = TestBed::build(TestBedConfig::small(DatasetProfile::StudIp)).expect("bed builds");
    const SHARDS: usize = 2;
    let store = Arc::new(
        SpillStore::in_temp_dir_with(
            bed.index.clone(),
            SHARDS,
            SpillConfig {
                resident_budget_bytes: 4096,
                page_cache_pages: 2,
                compact_dead_percent: 5,
                compact_min_dead_bytes: 512,
                retier_interval: 16,
                heat_decay_window: 0,
            },
            SegmentConfig {
                block_len: 8,
                max_segment_elems: 32,
                ..SegmentConfig::default()
            },
        )
        .expect("spill store builds"),
    );
    let lists: Vec<u64> = (0..store.num_lists() as u64)
        .filter(|&l| store.list_len(MergedListId(l)).unwrap() > 0)
        .collect();
    assert!(!lists.is_empty());

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let lists = lists.clone();
            std::thread::spawn(move || {
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for &l in &lists {
                        let fetch = RangedFetch {
                            list: MergedListId(l),
                            offset: (reads % 7) as usize,
                            count: 5,
                        };
                        store
                            .fetch_ranged(&fetch, None)
                            .expect("reads must survive concurrent compaction");
                        reads += 1;
                    }
                }
                reads
            })
        })
        .collect();

    for i in 0..60u64 {
        let list = lists[i as usize % lists.len()];
        let trs = (i.wrapping_mul(2_654_435_761) % 997) as f64 / 997.0;
        let element = OrderedElement {
            trs,
            group: GroupId(0),
            sealed: EncryptedElement {
                group: GroupId(0),
                ciphertext: vec![0xB7; 16],
            },
        };
        store.insert(MergedListId(list), element).unwrap();
        if i % 5 == 4 {
            for shard in 0..SHARDS {
                store.compact_shard(shard).unwrap();
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    for reader in readers {
        let reads = reader.join().expect("reader thread panicked");
        assert!(reads > 0, "readers must have made progress");
    }

    assert!(store.verify_ordering());
    assert!(store.budget_accounting_is_exact());
    for shard in 0..SHARDS {
        store.compact_shard(shard).unwrap();
    }
    assert_eq!(
        store.dead_page_bytes(),
        0,
        "a final pass reclaims everything"
    );
    assert_eq!(store.page_file_bytes(), store.spilled_bytes());
    for path in store.page_file_paths() {
        assert!(
            !path.with_extension("pages.compact").exists(),
            "no compaction scratch file may outlive its pass"
        );
    }
}
