//! Workspace smoke test: the fastest possible end-to-end canary.
//!
//! Builds a small test bed, runs a single query through the full
//! client → untrusted server → decrypt → rank pipeline, and checks that the
//! results are non-empty and entitlement-filtered (a client holding keys for
//! one group must only ever see that group's documents).  Future refactors
//! should keep this test fast — it exists to fail early and cheaply.

use std::collections::HashMap;

use zerber_suite::corpus::{DatasetProfile, GroupId};
use zerber_suite::protocol::{AccessControl, Client, IndexServer};
use zerber_suite::workload::{TestBed, TestBedConfig};
use zerber_suite::zerber_r::RetrievalConfig;

#[test]
fn single_query_roundtrip_returns_entitled_results() {
    let bed = TestBed::build(TestBedConfig::small(DatasetProfile::StudIp)).expect("bed builds");
    assert!(
        bed.corpus.num_groups() >= 2,
        "need a second group to test filtering"
    );

    let member_group = GroupId(0);
    let mut acl = AccessControl::new(b"smoke-secret");
    acl.register_user("smoke-user", &[member_group]);
    let server = IndexServer::new(bed.index.clone(), acl);

    let token = server.acl().issue_token("smoke-user");
    let memberships: HashMap<GroupId, _> = bed
        .all_memberships
        .iter()
        .filter(|(g, _)| **g == member_group)
        .map(|(g, k)| (*g, k.clone()))
        .collect();
    assert_eq!(
        memberships.len(),
        1,
        "client holds keys for exactly one group"
    );
    let client = Client::new("smoke-user", token, memberships);

    // The most frequent term occurs in documents of every group, so the
    // entitlement filter is actually exercised.
    let term = bed.stats.terms_by_doc_freq()[0];
    let outcome = client
        .query(&server, &bed.plan, term, &RetrievalConfig::for_k(10))
        .expect("query succeeds");

    assert!(
        !outcome.results.is_empty(),
        "frequent term must return results"
    );
    assert!(outcome.results.len() <= 10);
    assert!(outcome.requests >= 1);
    assert!(outcome.bytes_received > 0);
    for &(doc, score) in &outcome.results {
        assert!(score >= 0.0, "relevance scores are non-negative");
        let entry = bed
            .corpus
            .doc(doc)
            .expect("result references a corpus document");
        assert_eq!(
            entry.group, member_group,
            "doc {doc:?} from group {:?} leaked to a client entitled only to {member_group:?}",
            entry.group
        );
    }
}
