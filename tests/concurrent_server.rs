//! Concurrency integration test: several group members query and insert
//! against one shared index server at the same time (the collaborative
//! setting of Section 2).  The server's internal locking must keep the
//! ordered-index invariant intact and every client must still receive exactly
//! the results it is entitled to.

use std::collections::HashMap;
use std::sync::Arc;

use zerber_suite::corpus::{DatasetProfile, DocId, GroupId};
use zerber_suite::protocol::{AccessControl, Client, IndexServer};
use zerber_suite::workload::{TestBed, TestBedConfig};
use zerber_suite::zerber_r::RetrievalConfig;

#[test]
fn concurrent_queries_and_inserts_preserve_invariants() {
    let bed = TestBed::build(TestBedConfig::small(DatasetProfile::StudIp)).expect("bed builds");
    let mut acl = AccessControl::new(b"concurrency-secret");
    let all_groups: Vec<GroupId> = (0..bed.corpus.num_groups() as u32).map(GroupId).collect();
    for i in 0..4 {
        acl.register_user(&format!("user-{i}"), &all_groups);
    }
    let elements_before = bed.index.num_elements();
    let server = Arc::new(IndexServer::new(bed.index.clone(), acl));
    let plan = Arc::new(bed.plan.clone());
    let model = Arc::new(bed.model.clone());
    let order = bed.stats.terms_by_doc_freq();
    let query_terms: Vec<_> = order.iter().copied().take(12).collect();
    let insert_term = order[0];

    let mut handles = Vec::new();
    for worker in 0..4u32 {
        let server = Arc::clone(&server);
        let plan = Arc::clone(&plan);
        let model = Arc::clone(&model);
        let memberships: HashMap<GroupId, _> = bed
            .all_memberships
            .iter()
            .map(|(g, k)| (*g, k.clone()))
            .collect();
        let query_terms = query_terms.clone();
        handles.push(std::thread::spawn(move || {
            let user = format!("user-{worker}");
            let token = server.acl().issue_token(&user);
            let mut client = Client::new(user, token, memberships);
            let mut total_results = 0usize;
            let mut inserted = 0usize;
            for round in 0..5usize {
                // Query a rotating subset of terms.
                for (i, &term) in query_terms.iter().enumerate() {
                    if (i + round) % 3 == worker as usize % 3 {
                        let outcome = client
                            .query(&server, &plan, term, &RetrievalConfig::for_k(5))
                            .expect("query succeeds");
                        total_results += outcome.results.len();
                    }
                }
                // Insert one small document per round into the worker's group.
                let group = GroupId(worker % 2);
                let doc = DocId(500_000 + worker * 1_000 + round as u32);
                inserted += client
                    .insert_document(
                        &server,
                        &plan,
                        &model,
                        doc,
                        group,
                        &[(term_for_round(&query_terms, round), 2), (insert_term_copy(insert_term), 1)],
                    )
                    .expect("insert succeeds");
            }
            (total_results, inserted)
        }));
    }
    let mut total_results = 0usize;
    let mut total_inserted = 0usize;
    for h in handles {
        let (results, inserted) = h.join().expect("worker thread did not panic");
        total_results += results;
        total_inserted += inserted;
    }
    assert!(total_results > 0, "queries must return results");
    assert_eq!(total_inserted, 4 * 5 * 2, "every insert round adds two posting elements");
    assert_eq!(
        server.num_elements(),
        elements_before + total_inserted,
        "server must hold exactly the original plus the inserted elements"
    );
    let stats = server.stats();
    assert_eq!(stats.inserts_accepted as usize, total_inserted);
    assert!(stats.requests_served > 0);
    assert!(stats.bytes_out > 0);

    // After the concurrent phase, a fresh query must still see a consistent,
    // TRS-ordered view: results of the insert term include the new documents.
    let token = server.acl().issue_token("user-0");
    let auditor = Client::new("user-0", token, bed.all_memberships.clone());
    let outcome = auditor
        .query(&server, &plan, insert_term, &RetrievalConfig::for_k(50))
        .expect("audit query succeeds");
    assert!(outcome.results.len() >= 20);
    // Ranked output must be non-increasing in relevance.
    assert!(outcome
        .results
        .windows(2)
        .all(|w| w[0].1 >= w[1].1 - 1e-12));
}

fn term_for_round(terms: &[zerber_suite::corpus::TermId], round: usize) -> zerber_suite::corpus::TermId {
    terms[round % terms.len()]
}

fn insert_term_copy(t: zerber_suite::corpus::TermId) -> zerber_suite::corpus::TermId {
    t
}
