//! Concurrency integration test: several group members query and insert
//! against one shared index server at the same time (the collaborative
//! setting of Section 2).  The server's internal locking must keep the
//! ordered-index invariant intact and every client must still receive exactly
//! the results it is entitled to.

use std::collections::HashMap;
use std::sync::{Arc, Barrier};

use zerber_suite::corpus::{DatasetProfile, DocId, GroupId};
use zerber_suite::protocol::{
    drive_pipelined_queries, drive_raw_queries, AccessControl, AuthToken, Client, IndexServer,
    LoadConfig, PipelineConfig, QueryRequest, StoreEngine, WireElement,
};
use zerber_suite::workload::{TestBed, TestBedConfig};
use zerber_suite::zerber::MergedListId;
use zerber_suite::zerber_r::RetrievalConfig;

#[test]
fn concurrent_queries_and_inserts_preserve_invariants() {
    let bed = TestBed::build(TestBedConfig::small(DatasetProfile::StudIp)).expect("bed builds");
    let mut acl = AccessControl::new(b"concurrency-secret");
    let all_groups: Vec<GroupId> = (0..bed.corpus.num_groups() as u32).map(GroupId).collect();
    for i in 0..4 {
        acl.register_user(&format!("user-{i}"), &all_groups);
    }
    let elements_before = bed.index.num_elements();
    let server = Arc::new(IndexServer::new(bed.index.clone(), acl));
    let plan = Arc::new(bed.plan.clone());
    let model = Arc::new(bed.model.clone());
    let order = bed.stats.terms_by_doc_freq();
    let query_terms: Vec<_> = order.iter().copied().take(12).collect();
    let insert_term = order[0];

    let mut handles = Vec::new();
    for worker in 0..4u32 {
        let server = Arc::clone(&server);
        let plan = Arc::clone(&plan);
        let model = Arc::clone(&model);
        let memberships: HashMap<GroupId, _> = bed
            .all_memberships
            .iter()
            .map(|(g, k)| (*g, k.clone()))
            .collect();
        let query_terms = query_terms.clone();
        handles.push(std::thread::spawn(move || {
            let user = format!("user-{worker}");
            let token = server.acl().issue_token(&user);
            let mut client = Client::new(user, token, memberships);
            let mut total_results = 0usize;
            let mut inserted = 0usize;
            for round in 0..5usize {
                // Query a rotating subset of terms.
                for (i, &term) in query_terms.iter().enumerate() {
                    if (i + round) % 3 == worker as usize % 3 {
                        let outcome = client
                            .query(&server, &plan, term, &RetrievalConfig::for_k(5))
                            .expect("query succeeds");
                        total_results += outcome.results.len();
                    }
                }
                // Insert one small document per round into the worker's group.
                let group = GroupId(worker % 2);
                let doc = DocId(500_000 + worker * 1_000 + round as u32);
                inserted += client
                    .insert_document(
                        &server,
                        &plan,
                        &model,
                        doc,
                        group,
                        &[
                            (term_for_round(&query_terms, round), 2),
                            (insert_term_copy(insert_term), 1),
                        ],
                    )
                    .expect("insert succeeds");
            }
            (total_results, inserted)
        }));
    }
    let mut total_results = 0usize;
    let mut total_inserted = 0usize;
    for h in handles {
        let (results, inserted) = h.join().expect("worker thread did not panic");
        total_results += results;
        total_inserted += inserted;
    }
    assert!(total_results > 0, "queries must return results");
    assert_eq!(
        total_inserted,
        4 * 5 * 2,
        "every insert round adds two posting elements"
    );
    assert_eq!(
        server.num_elements(),
        elements_before + total_inserted,
        "server must hold exactly the original plus the inserted elements"
    );
    let stats = server.stats();
    assert_eq!(stats.inserts_accepted as usize, total_inserted);
    assert!(stats.requests_served > 0);
    assert!(stats.bytes_out > 0);

    // After the concurrent phase, a fresh query must still see a consistent,
    // TRS-ordered view: results of the insert term include the new documents.
    let token = server.acl().issue_token("user-0");
    let auditor = Client::new("user-0", token, bed.all_memberships.clone());
    let outcome = auditor
        .query(&server, &plan, insert_term, &RetrievalConfig::for_k(50))
        .expect("audit query succeeds");
    assert!(outcome.results.len() >= 20);
    // Ranked output must be non-increasing in relevance.
    assert!(outcome.results.windows(2).all(|w| w[0].1 >= w[1].1 - 1e-12));
}

/// The pipelined driver (bounded submission queue + scheduler thread
/// draining cross-user rounds) must ship exactly the same elements per query
/// as the per-query thread-pool driver, on every engine, while amortizing
/// locks and authentication across each round.
#[test]
fn pipelined_driver_matches_the_raw_driver_on_every_engine() {
    let bed = TestBed::build(TestBedConfig::small(DatasetProfile::StudIp)).expect("bed builds");
    let users = TestBed::server_users(4);
    let lists: Vec<u64> = {
        let probe = bed.build_server(4, 4);
        let mut all: Vec<u64> = (0..probe.num_lists() as u64).collect();
        all.sort_by_key(|&l| {
            std::cmp::Reverse(probe.store().list_len(MergedListId(l)).unwrap_or(0))
        });
        all.truncate(8);
        all
    };
    for engine in [
        StoreEngine::Sharded,
        StoreEngine::SingleMutex,
        StoreEngine::Segment,
        StoreEngine::Spill,
    ] {
        let server = bed.build_engine_server(engine, 4, 4);
        let raw = drive_raw_queries(
            &server,
            &users,
            &lists,
            &LoadConfig {
                threads: 4,
                queries_per_thread: 30,
                k: 10,
            },
        )
        .expect("raw run succeeds");
        let raw_elements_per_query = raw.elements_sent as f64 / raw.queries as f64;
        server.reset_stats();
        let config = PipelineConfig {
            workers: 4,
            queries_per_worker: 30,
            batch_size: 16,
            queue_capacity: 32,
            k: 10,
            parallelism: 0,
        };
        let piped =
            drive_pipelined_queries(&server, &users, &lists, &config).expect("piped run succeeds");
        assert_eq!(piped.queries, 120, "engine {engine:?}");
        // Same workload shape => identical elements shipped per query.
        let piped_elements_per_query = piped.elements_sent as f64 / piped.queries as f64;
        assert!(
            (piped_elements_per_query - raw_elements_per_query).abs() < 1e-9,
            "engine {engine:?}: {piped_elements_per_query} vs {raw_elements_per_query}"
        );
        let stats = server.stats();
        assert_eq!(stats.requests_served, 120);
        assert!(stats.batches > 0, "the stream handler served the rounds");
        // Batching amortizes: strictly fewer lock acquisitions and auth
        // checks than one per request.
        assert!(
            stats.lock_acquisitions < stats.requests_served,
            "engine {engine:?}: {} locks for {} requests",
            stats.lock_acquisitions,
            stats.requests_served
        );
        assert!(stats.auth_checks < stats.requests_served);
        assert_eq!(
            server.open_cursors(),
            0,
            "one-shot rounds leave no sessions"
        );
    }

    // Error isolation reaches the driver: a worker authenticating as an
    // unregistered user aborts the run with an error instead of hanging.
    let server = bed.build_server(4, 4);
    let ghost = vec!["ghost-user".to_string()];
    assert!(
        drive_pipelined_queries(&server, &ghost, &lists, &PipelineConfig::for_batch(4)).is_err()
    );
    assert!(drive_pipelined_queries(&server, &users, &[], &PipelineConfig::for_batch(4)).is_err());
}

fn term_for_round(
    terms: &[zerber_suite::corpus::TermId],
    round: usize,
) -> zerber_suite::corpus::TermId {
    terms[round % terms.len()]
}

fn insert_term_copy(t: zerber_suite::corpus::TermId) -> zerber_suite::corpus::TermId {
    t
}

/// Walks one merged list to exhaustion as `user` via cursor follow-ups of
/// size `step`, returning the exact element sequence received.
fn cursor_walk(server: &IndexServer, user: &str, list: u64, step: u32) -> Vec<WireElement> {
    let token = server.acl().issue_token(user);
    let mut elements = Vec::new();
    let mut cursor = 0u64;
    let mut visible = u64::MAX;
    while (elements.len() as u64) < visible {
        let response = server
            .handle_query(
                &QueryRequest {
                    user: user.to_string(),
                    list,
                    offset: elements.len() as u64,
                    cursor,
                    count: step,
                    k: step,
                },
                &token,
            )
            .expect("cursor walk request succeeds");
        cursor = response.cursor;
        visible = response.visible_total;
        if response.elements.is_empty() {
            break;
        }
        elements.extend(response.elements);
    }
    elements
}

fn busiest_list(server: &IndexServer) -> u64 {
    (0..server.num_lists() as u64)
        .max_by_key(|&l| server.store().list_len(MergedListId(l)).unwrap())
        .unwrap()
}

/// Satellite check for the cursor-session engine: two clients interleave
/// follow-up requests on the *same* merged list — concurrently and in strict
/// alternation — and each must receive exactly the element sequence a
/// sequential, single-client run produces.  Sessions are per-client, so
/// neither walk may disturb the other's position.
#[test]
fn interleaved_cursor_follow_ups_match_a_sequential_run() {
    let bed = TestBed::build(TestBedConfig::small(DatasetProfile::StudIp)).expect("bed builds");
    let server = Arc::new(bed.build_server(4, 2));
    let list = busiest_list(&server);
    let list_len = server.store().list_len(MergedListId(list)).unwrap();
    assert!(list_len > 10, "need a non-trivial list, got {list_len}");

    // Sequential references (queries do not mutate, so the same server can
    // serve them): one walk per step size.
    let reference_a = cursor_walk(&server, "user-0", list, 3);
    let reference_b = cursor_walk(&server, "user-1", list, 5);
    assert_eq!(reference_a.len(), list_len);
    assert_eq!(reference_b.len(), list_len);

    // Concurrent interleaving: both clients start together on the same list.
    let barrier = Arc::new(Barrier::new(2));
    let handles: Vec<_> = [("user-0", 3u32), ("user-1", 5u32)]
        .into_iter()
        .map(|(user, step)| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                cursor_walk(&server, user, list, step)
            })
        })
        .collect();
    let concurrent: Vec<Vec<WireElement>> = handles
        .into_iter()
        .map(|h| h.join().expect("walker did not panic"))
        .collect();
    assert_eq!(concurrent[0], reference_a);
    assert_eq!(concurrent[1], reference_b);

    // Deterministic strict alternation: one request for A, one for B, ...
    let token_a = server.acl().issue_token("user-0");
    let token_b = server.acl().issue_token("user-1");
    let mut walks = [
        ("user-0", &token_a, 3u32, Vec::new(), 0u64, false),
        ("user-1", &token_b, 5u32, Vec::new(), 0u64, false),
    ];
    while walks.iter().any(|w| !w.5) {
        for (user, token, step, elements, cursor, done) in walks.iter_mut() {
            if *done {
                continue;
            }
            let response = server
                .handle_query(
                    &QueryRequest {
                        user: user.to_string(),
                        list,
                        offset: elements.len() as u64,
                        cursor: *cursor,
                        count: *step,
                        k: *step,
                    },
                    token,
                )
                .expect("alternating request succeeds");
            *cursor = response.cursor;
            let received = elements.len() + response.elements.len();
            *done = response.elements.is_empty() || received as u64 >= response.visible_total;
            elements.extend(response.elements);
        }
    }
    assert_eq!(walks[0].3, reference_a);
    assert_eq!(walks[1].3, reference_b);
    assert_eq!(
        server.open_cursors(),
        0,
        "exhausted walks close their sessions"
    );
}

/// A round where ~90% of the requests hit lists of one storage shard must
/// trigger work-stealing on a 2-worker pool — the idle worker drains the hot
/// shard's backlog instead of letting the round serialize behind its home
/// worker — and the round must still reassemble in input order, identical to
/// a sequential scheduler.  Stealing is timing-dependent (one worker can
/// race through the whole round before the other wakes, especially on one
/// CPU), so the round is retried until a steal is observed; correctness is
/// asserted on every attempt.
#[test]
fn skewed_rounds_trigger_work_stealing_and_stay_ordered() {
    let bed = TestBed::build(TestBedConfig::small(DatasetProfile::StudIp)).expect("bed builds");
    let server = bed.build_server(8, 4);
    let reference = bed.build_server(8, 4);

    // Partition lists by storage shard and pick the best-populated shard as
    // the hot one.
    let mut by_shard: HashMap<usize, Vec<u64>> = HashMap::new();
    for l in 0..server.num_lists() as u64 {
        let shard = server.store().shard_of(MergedListId(l));
        by_shard.entry(shard).or_default().push(l);
    }
    let (&hot_shard, hot_lists) = by_shard
        .iter()
        .max_by_key(|(_, lists)| lists.len())
        .expect("at least one shard holds lists");
    let hot_lists = hot_lists.clone();
    let cold_lists: Vec<u64> = by_shard
        .iter()
        .filter(|(&shard, _)| shard != hot_shard)
        .flat_map(|(_, lists)| lists.iter().copied())
        .collect();
    assert!(
        !cold_lists.is_empty(),
        "the fixture must spread lists over more than one shard"
    );

    let users = TestBed::server_users(4);
    let round: Vec<(QueryRequest, AuthToken)> = (0..80usize)
        .map(|i| {
            let user = users[i % users.len()].clone();
            // Every 10th request goes to a cold shard; the rest pile onto
            // the hot shard.
            let list = if i % 10 == 9 {
                cold_lists[(i / 10) % cold_lists.len()]
            } else {
                hot_lists[i % hot_lists.len()]
            };
            let token = server.acl().issue_token(&user);
            let request = QueryRequest {
                user,
                list,
                offset: 0,
                cursor: 0,
                count: 5,
                k: 5,
            };
            (request, token)
        })
        .collect();

    let strip = |results: Vec<Result<_, _>>| -> Vec<(Vec<WireElement>, u64)> {
        results
            .into_iter()
            .map(|r| {
                let response: zerber_suite::protocol::QueryResponse =
                    r.expect("every request of the round is well-formed");
                (response.elements, response.visible_total)
            })
            .collect()
    };
    let expected = strip(reference.handle_query_stream(&round));

    server.set_shard_workers(2);
    assert_eq!(server.shard_workers(), 2);
    let mut stolen = 0u64;
    for _ in 0..200 {
        server.reset_stats();
        let results = strip(server.handle_query_stream(&round));
        assert_eq!(
            results, expected,
            "a pooled skewed round must reassemble in input order"
        );
        let stats = server.stats();
        assert_eq!(stats.worker_rounds, 1);
        assert_eq!(stats.round_jobs, 80);
        assert!(
            stats.round_buckets >= 2,
            "the hot shard splits into buckets"
        );
        assert!(stats.max_bucket_jobs >= 1);
        assert!(stats.mean_bucket_occupancy() > 0.0);
        stolen = stats.stolen_buckets;
        if stolen > 0 {
            break;
        }
    }
    assert!(
        stolen > 0,
        "a 90%-skewed round on 2 workers must eventually record a steal"
    );
}

/// The pool's shutdown path: reconfiguring the worker count mid-life (which
/// drops and joins the old pool), disabling it, re-enabling it and finally
/// dropping the server with a live pool must never hang, leak workers or
/// change any answer.  The loop varies the round shape per seed so repeated
/// runs (the CI stress loop) exercise different queue interleavings.
#[test]
fn pool_reconfiguration_and_shutdown_are_clean() {
    let bed = TestBed::build(TestBedConfig::small(DatasetProfile::StudIp)).expect("bed builds");
    let users = TestBed::server_users(4);
    for seed in 0..10u64 {
        let server = bed.build_server(4, 4);
        let num_lists = server.num_lists() as u64;
        let round: Vec<(QueryRequest, AuthToken)> = (0..48u64)
            .map(|i| {
                let user = users[(seed + i) as usize % users.len()].clone();
                let token = server.acl().issue_token(&user);
                let request = QueryRequest {
                    user,
                    list: (seed.wrapping_mul(7) + i) % num_lists,
                    offset: 0,
                    cursor: 0,
                    count: 4,
                    k: 4,
                };
                (request, token)
            })
            .collect();
        let expected: Vec<_> = server
            .handle_query_stream(&round)
            .into_iter()
            .map(|r| r.expect("round is well-formed").elements)
            .collect();
        for workers in [2, 3, 0, 1] {
            server.set_shard_workers(workers);
            assert_eq!(server.shard_workers(), workers);
            let results: Vec<_> = server
                .handle_query_stream(&round)
                .into_iter()
                .map(|r| r.expect("round is well-formed").elements)
                .collect();
            assert_eq!(results, expected, "workers={workers} seed={seed}");
        }
        // Dropping the server with the 1-worker pool still installed joins
        // its threads.
        drop(server);
    }
}
