//! Crash-recovery torture tests for the durable `SpillStore`.
//!
//! The deterministic fault-injection shim (`FaultIo`) turns "what happens
//! if the process dies here?" into an enumerable question: a probe run
//! records the cumulative IO budget after every write / rename / remove /
//! truncate / fsync, and the kill loop then replays the identical workload
//! once per recorded boundary (and one unit before it, to land *inside*
//! multi-byte writes), crashing the store at that exact point.  After each
//! simulated crash the directory must reopen with the production IO path —
//! never panicking, never refusing — and serve a state that is exactly a
//! prefix of the insert history, with the byte-budget accounting still
//! exact.
//!
//! Alongside the exhaustive loop: a kill-at-every-byte WAL truncation
//! property (any prefix of the log recovers exactly the fully-fitting
//! frames), lying-fsync and buffered-power-loss scenarios, deterministic
//! bit-flip corruption of both the WAL and checkpointed pages, and a
//! crash *during* recovery itself.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use proptest::prelude::*;
use zerber_suite::corpus::{GroupId, TermId};
use zerber_suite::store::{
    DurableConfig, FaultIo, FaultMode, ListStore, PageIo, SegmentConfig, SingleMutexStore,
    SpillConfig, SpillStore, SyncPolicy,
};
use zerber_suite::zerber::{EncryptedElement, MergePlan, MergedListId};
use zerber_suite::zerber_r::{OrderedElement, OrderedIndex};

const NUM_LISTS: usize = 4;
const NUM_SHARDS: usize = 2;

fn element(trs: f64, group: u32, ct: &[u8]) -> OrderedElement {
    let group = GroupId(group % 4);
    OrderedElement {
        trs,
        group,
        sealed: EncryptedElement {
            group,
            ciphertext: ct.to_vec(),
        },
    }
}

fn fixture_index(num_lists: usize, seeded: bool) -> OrderedIndex {
    let plan = MergePlan::from_term_lists(
        (0..num_lists).map(|i| vec![TermId(i as u32)]).collect(),
        "durable-recovery-fixture",
        2.0,
    );
    let lists = (0..num_lists)
        .map(|l| {
            if !seeded {
                return Vec::new();
            }
            (0..3)
                .map(|i| element(90.0 - 10.0 * i as f64 - l as f64, (l + i) as u32, b"seed"))
                .collect()
        })
        .collect();
    OrderedIndex::from_parts(lists, plan)
}

/// Tiny segments + zero resident budget: every sealed segment round-trips
/// through the page files, so checkpoints and compaction actually move
/// bytes.
fn segment_config() -> SegmentConfig {
    SegmentConfig {
        block_len: 3,
        tail_threshold: 2,
        max_segment_elems: 12,
        max_segments: 2,
        max_payload_bytes: u32::MAX as usize,
    }
}

fn spill_config() -> SpillConfig {
    SpillConfig {
        resident_budget_bytes: 0,
        page_cache_pages: 2,
        ..SpillConfig::default().without_tiering()
    }
}

fn durable_config(sync: SyncPolicy) -> DurableConfig {
    DurableConfig {
        sync,
        // Checkpoints in these tests are explicit, not WAL-size driven, so
        // every crash point is placed by the workload itself.
        checkpoint_wal_bytes: 1 << 30,
    }
}

fn test_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "zerber-durable-recovery-{}-{name}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Flat copy of a store root (the layout has no subdirectories).
fn copy_dir(src: &Path, dst: &Path) {
    let _ = fs::remove_dir_all(dst);
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// The deterministic insert history the kill loop replays: interleaved
/// across all lists, TRS values landing above, between and below the
/// seeded elements so inserts hit heads, middles and tails.
fn insert_history() -> Vec<(usize, OrderedElement)> {
    let mut history = Vec::new();
    for i in 0..18usize {
        let list = i % NUM_LISTS;
        let trs = 95.0 - 6.0 * i as f64;
        history.push((list, element(trs, i as u32, format!("w{i:02}").as_bytes())));
    }
    history
}

/// Replays the workload: a third of the inserts, an explicit checkpoint, a
/// third more, forced compaction of every shard, then the rest.  Errors are
/// ignored — after the injected crash point the shim silently no-ops, and a
/// real crashed process would not observe results either.
fn run_workload(store: &SpillStore) {
    let history = insert_history();
    let third = history.len() / 3;
    for (list, el) in &history[..third] {
        let _ = store.insert(MergedListId(*list as u64), el.clone());
    }
    let _ = store.checkpoint();
    for (list, el) in &history[third..2 * third] {
        let _ = store.insert(MergedListId(*list as u64), el.clone());
    }
    for shard in 0..NUM_SHARDS {
        let _ = store.compact_shard(shard);
    }
    for (list, el) in &history[2 * third..] {
        let _ = store.insert(MergedListId(*list as u64), el.clone());
    }
}

/// Per-list oracle states: `states[l][k]` is list `l` after its first `k`
/// inserts from the history.  WAL replay preserves per-shard apply order,
/// so any recovered list must equal one of these prefixes exactly.
fn oracle_states(index: &OrderedIndex) -> Vec<Vec<Vec<OrderedElement>>> {
    let oracle = SingleMutexStore::new(index.clone());
    let mut states: Vec<Vec<Vec<OrderedElement>>> = (0..NUM_LISTS)
        .map(|l| vec![oracle.snapshot_list(MergedListId(l as u64)).unwrap()])
        .collect();
    for (list, el) in insert_history() {
        let id = MergedListId(list as u64);
        oracle.insert(id, el).unwrap();
        states[list].push(oracle.snapshot_list(id).unwrap());
    }
    states
}

/// Opens `dir` with the production IO path and audits it against the
/// oracle: ordering holds, budget accounting is exact, and every list is
/// some prefix of its insert history.
fn audit_recovered(dir: &Path, states: &[Vec<Vec<OrderedElement>>], at: u64) -> SpillStore {
    let recovered = SpillStore::open(dir, spill_config(), durable_config(SyncPolicy::Always))
        .unwrap_or_else(|e| panic!("open after crash at budget {at} failed: {e}"));
    assert!(
        recovered.verify_ordering(),
        "ordering violated after crash at budget {at}"
    );
    assert!(
        recovered.budget_accounting_is_exact(),
        "budget accounting drifted after crash at budget {at}"
    );
    for (l, list_states) in states.iter().enumerate() {
        let got = recovered.snapshot_list(MergedListId(l as u64)).unwrap();
        assert!(
            list_states.contains(&got),
            "list {l} after crash at budget {at} is not a prefix of its history: \
             {} elements recovered",
            got.len()
        );
    }
    recovered
}

/// The tentpole acceptance loop: crash at every recorded IO boundary (and
/// one budget unit before it, to tear multi-byte writes mid-way), then
/// recover with the production IO path and audit the result.
#[test]
fn kill_at_every_injection_point_recovers_a_prefix_of_history() {
    let index = fixture_index(NUM_LISTS, true);
    let states = oracle_states(&index);

    // Baseline directory: a cleanly created store, dropped intact.
    let root = test_root("kill-loop");
    let baseline = root.join("baseline");
    drop(
        SpillStore::create_durable_with(
            index.clone(),
            &baseline,
            NUM_SHARDS,
            spill_config(),
            segment_config(),
            durable_config(SyncPolicy::Always),
            FaultIo::new(FaultMode::KillAfter(u64::MAX)) as Arc<dyn PageIo>,
            false,
        )
        .unwrap(),
    );

    // Probe run: unlimited budget, identical workload, boundaries recorded.
    let probe_dir = root.join("probe");
    copy_dir(&baseline, &probe_dir);
    let probe_io = FaultIo::new(FaultMode::KillAfter(u64::MAX));
    let probe = SpillStore::open_with_io(
        &probe_dir,
        spill_config(),
        durable_config(SyncPolicy::Always),
        probe_io.clone() as Arc<dyn PageIo>,
    )
    .unwrap();
    run_workload(&probe);
    drop(probe);
    let mut points: Vec<u64> = probe_io.op_boundaries();
    points.extend(
        probe_io
            .op_boundaries()
            .iter()
            .filter_map(|b| b.checked_sub(1)),
    );
    points.sort_unstable();
    points.dedup();
    assert!(
        points.len() > 40,
        "probe recorded suspiciously few injection points: {}",
        points.len()
    );

    let crash_dir = root.join("crash");
    for &at in &points {
        copy_dir(&baseline, &crash_dir);
        let io = FaultIo::new(FaultMode::KillAfter(at));
        // The store may refuse to open only by returning an error — a crash
        // mid-workload (or mid-open) must never poison the directory.
        if let Ok(store) = SpillStore::open_with_io(
            &crash_dir,
            spill_config(),
            durable_config(SyncPolicy::Always),
            io.clone() as Arc<dyn PageIo>,
        ) {
            run_workload(&store);
            drop(store);
        }
        let recovered = audit_recovered(&crash_dir, &states, at);
        // The survivor keeps serving: a fresh insert round-trips through
        // another shutdown and reopen.
        let probe_el = element(1.5, 0, b"post-crash");
        recovered.insert(MergedListId(0), probe_el.clone()).unwrap();
        drop(recovered);
        let reopened = SpillStore::open(
            &crash_dir,
            spill_config(),
            durable_config(SyncPolicy::Always),
        )
        .unwrap();
        assert!(reopened
            .snapshot_list(MergedListId(0))
            .unwrap()
            .iter()
            .any(|e| e.sealed.ciphertext == b"post-crash"));
    }
    let _ = fs::remove_dir_all(&root);
}

/// A crash in the middle of recovery itself (while truncating a torn WAL
/// tail) must leave the directory recoverable by the next attempt.
#[test]
fn crash_during_recovery_truncation_is_itself_recoverable() {
    let index = fixture_index(NUM_LISTS, true);
    let states = oracle_states(&index);
    let root = test_root("crash-in-recovery");
    let baseline = root.join("baseline");
    let store = SpillStore::create_durable(
        index,
        &baseline,
        NUM_SHARDS,
        spill_config(),
        durable_config(SyncPolicy::Never),
    )
    .unwrap();
    for (list, el) in insert_history() {
        store.insert(MergedListId(list as u64), el).unwrap();
    }
    drop(store);

    // Tear both WAL tails mid-frame so recovery has truncation work to do.
    for shard in 0..NUM_SHARDS {
        let wal = baseline.join(format!("shard-{shard:03}.wal"));
        let len = fs::metadata(&wal).unwrap().len();
        fs::OpenOptions::new()
            .write(true)
            .open(&wal)
            .unwrap()
            .set_len(len - 5)
            .unwrap();
    }

    let crash_dir = root.join("crash");
    for at in 0..8u64 {
        copy_dir(&baseline, &crash_dir);
        let io = FaultIo::new(FaultMode::KillAfter(at));
        // Recovery under a dying process: the result (even Ok) is void.
        let _ = SpillStore::open_with_io(
            &crash_dir,
            spill_config(),
            durable_config(SyncPolicy::Always),
            io as Arc<dyn PageIo>,
        );
        let recovered = audit_recovered(&crash_dir, &states, at);
        assert!(recovered.truncated_wal_records() <= NUM_SHARDS as u64);
    }
    let _ = fs::remove_dir_all(&root);
}

/// A lying fsync (`DropSyncs`: buffered writes, `sync` silently dropped)
/// across inserts *and* a checkpoint loses the un-synced work but must
/// never lose the store: recovery falls back to the previous manifest and
/// serves the last durable state.
#[test]
fn dropped_fsyncs_recover_to_the_last_durable_state() {
    let index = fixture_index(NUM_LISTS, true);
    let root = test_root("drop-syncs");
    let dir = root.join("store");
    let store = SpillStore::create_durable(
        index,
        &dir,
        NUM_SHARDS,
        spill_config(),
        durable_config(SyncPolicy::Always),
    )
    .unwrap();
    let history = insert_history();
    let (durable_half, lost_half) = history.split_at(history.len() / 2);
    for (list, el) in durable_half {
        store
            .insert(MergedListId(*list as u64), el.clone())
            .unwrap();
    }
    store.checkpoint().unwrap();
    drop(store);
    let baseline = {
        let s = SpillStore::open(&dir, spill_config(), durable_config(SyncPolicy::Always)).unwrap();
        let snap: Vec<_> = (0..NUM_LISTS)
            .map(|l| s.snapshot_list(MergedListId(l as u64)).unwrap())
            .collect();
        snap
    };

    let liar = SpillStore::open_with_io(
        &dir,
        spill_config(),
        durable_config(SyncPolicy::Always),
        FaultIo::new(FaultMode::DropSyncs) as Arc<dyn PageIo>,
    )
    .unwrap();
    for (list, el) in lost_half {
        liar.insert(MergedListId(*list as u64), el.clone()).unwrap();
    }
    // The checkpoint "succeeds" in memory, but nothing it wrote is durable:
    // the manifest commit publishes a hollow file over the current slot.
    liar.checkpoint().unwrap();
    drop(liar);

    let recovered =
        SpillStore::open(&dir, spill_config(), durable_config(SyncPolicy::Always)).unwrap();
    assert!(recovered.verify_ordering());
    assert!(recovered.budget_accounting_is_exact());
    for (l, expected) in baseline.iter().enumerate() {
        assert_eq!(
            &recovered.snapshot_list(MergedListId(l as u64)).unwrap(),
            expected,
            "list {l} does not match the last durable state"
        );
    }
    let _ = fs::remove_dir_all(&root);
}

/// Under `SyncPolicy::Always` every acknowledged insert survives a
/// buffered power loss: each append is fsynced before `insert` returns, so
/// the `Buffered` shim (which drops whatever was not synced) loses nothing.
#[test]
fn buffered_power_loss_keeps_every_acknowledged_insert() {
    let index = fixture_index(NUM_LISTS, true);
    let root = test_root("buffered-always");
    let dir = root.join("store");
    drop(
        SpillStore::create_durable(
            index.clone(),
            &dir,
            NUM_SHARDS,
            spill_config(),
            durable_config(SyncPolicy::Always),
        )
        .unwrap(),
    );

    let store = SpillStore::open_with_io(
        &dir,
        spill_config(),
        durable_config(SyncPolicy::Always),
        FaultIo::new(FaultMode::Buffered) as Arc<dyn PageIo>,
    )
    .unwrap();
    for (list, el) in insert_history() {
        store.insert(MergedListId(list as u64), el).unwrap();
    }
    drop(store);

    let oracle = oracle_states(&index);
    let recovered =
        SpillStore::open(&dir, spill_config(), durable_config(SyncPolicy::Always)).unwrap();
    for (l, list_states) in oracle.iter().enumerate() {
        assert_eq!(
            &recovered.snapshot_list(MergedListId(l as u64)).unwrap(),
            list_states.last().unwrap(),
            "list {l} lost acknowledged inserts"
        );
    }
    let _ = fs::remove_dir_all(&root);
}

/// Under `SyncPolicy::EveryN` a *clean* shutdown must still keep every
/// acknowledged insert: batched fsync is allowed to lose the unsynced tail
/// on a crash, never on an orderly drop.  The drop path flushes and syncs
/// the WAL tails; the `Buffered` shim (which discards whatever was never
/// synced) proves it — without the drop-time sync, up to N-1 acknowledged
/// appends would evaporate here.
#[test]
fn clean_drop_under_batched_sync_keeps_every_acknowledged_insert() {
    let index = fixture_index(NUM_LISTS, true);
    let root = test_root("buffered-everyn-drop");
    let dir = root.join("store");
    let durable = durable_config(SyncPolicy::EveryN(1000));
    drop(
        SpillStore::create_durable(index.clone(), &dir, NUM_SHARDS, spill_config(), durable)
            .unwrap(),
    );

    let store = SpillStore::open_with_io(
        &dir,
        spill_config(),
        durable,
        FaultIo::new(FaultMode::Buffered) as Arc<dyn PageIo>,
    )
    .unwrap();
    for (list, el) in insert_history() {
        store.insert(MergedListId(list as u64), el).unwrap();
    }
    // With N = 1000 nothing hit the sync threshold: only the drop-path
    // flush stands between the acknowledged inserts and the bit bucket.
    drop(store);

    let oracle = oracle_states(&index);
    let recovered = SpillStore::open(&dir, spill_config(), durable).unwrap();
    for (l, list_states) in oracle.iter().enumerate() {
        assert_eq!(
            &recovered.snapshot_list(MergedListId(l as u64)).unwrap(),
            list_states.last().unwrap(),
            "list {l} lost acknowledged inserts across a clean shutdown"
        );
    }
    let _ = fs::remove_dir_all(&root);
}

/// A bit-flip inside the WAL truncates the log at the corrupt frame and
/// keeps serving everything before it — corruption never panics and never
/// bricks the store.
#[test]
fn bit_flip_in_wal_truncates_at_the_corrupt_frame_and_serves() {
    let index = fixture_index(1, false);
    let root = test_root("wal-flip");
    let dir = root.join("store");
    let store = SpillStore::create_durable(
        index,
        &dir,
        1,
        spill_config(),
        durable_config(SyncPolicy::Never),
    )
    .unwrap();
    for i in 0..6u32 {
        store
            .insert(MergedListId(0), element(60.0 - i as f64, i, b"flip"))
            .unwrap();
    }
    drop(store);

    // Flip one byte in the fourth frame's payload: frames are
    // 8 (header) + 8 (seq) + 8 (list) + 14 + 4 (element) = 42 bytes.
    let wal = dir.join("shard-000.wal");
    let mut bytes = fs::read(&wal).unwrap();
    assert_eq!(bytes.len(), 6 * 42);
    bytes[3 * 42 + 20] ^= 0x10;
    fs::write(&wal, &bytes).unwrap();

    let recovered =
        SpillStore::open(&dir, spill_config(), durable_config(SyncPolicy::Never)).unwrap();
    assert_eq!(recovered.num_elements(), 3);
    assert_eq!(recovered.truncated_wal_records(), 1);
    assert!(recovered.verify_ordering());
    recovered
        .insert(MergedListId(0), element(1.0, 0, b"after"))
        .unwrap();
    drop(recovered);
    let reopened =
        SpillStore::open(&dir, spill_config(), durable_config(SyncPolicy::Never)).unwrap();
    assert_eq!(reopened.num_elements(), 4);
    let _ = fs::remove_dir_all(&root);
}

/// A bit-flip inside a checkpointed page referenced by the manifest is
/// detected by full segment validation: `open` reports a clean error, it
/// does not panic and does not serve corrupt data.
#[test]
fn bit_flip_in_a_checkpointed_page_fails_recovery_cleanly() {
    let index = fixture_index(2, true);
    let root = test_root("page-flip");
    let dir = root.join("store");
    let store = SpillStore::create_durable_with(
        index,
        &dir,
        1,
        spill_config(),
        segment_config(),
        durable_config(SyncPolicy::Always),
        FaultIo::new(FaultMode::KillAfter(u64::MAX)) as Arc<dyn PageIo>,
        false,
    )
    .unwrap();
    for i in 0..8u32 {
        store
            .insert(MergedListId(0), element(80.0 - i as f64, i, b"pageload"))
            .unwrap();
    }
    store.checkpoint().unwrap();
    drop(store);

    // The file ends with the last page the checkpoint sealed, so the final
    // bytes are always manifest-referenced state (earlier regions may be
    // dead pages superseded by insert rewrites).
    let pages = dir.join("shard-000.g0.pages");
    let mut bytes = fs::read(&pages).unwrap();
    assert!(bytes.len() > 16, "checkpoint produced no page data");
    let target = bytes.len() - 3;
    bytes[target] ^= 0x5A;
    fs::write(&pages, &bytes).unwrap();

    let result = SpillStore::open(&dir, spill_config(), durable_config(SyncPolicy::Always));
    assert!(
        result.is_err(),
        "recovery accepted a corrupted checkpointed page"
    );
    let _ = fs::remove_dir_all(&root);
}

/// Recovery metering: reopening a checkpointed store reports the pages it
/// loaded from the manifest.
#[test]
fn reopening_a_checkpointed_store_meters_recovered_pages() {
    let index = fixture_index(2, true);
    let root = test_root("recovered-pages");
    let dir = root.join("store");
    let store = SpillStore::create_durable_with(
        index,
        &dir,
        1,
        spill_config(),
        segment_config(),
        durable_config(SyncPolicy::Always),
        FaultIo::new(FaultMode::KillAfter(u64::MAX)) as Arc<dyn PageIo>,
        false,
    )
    .unwrap();
    for i in 0..8u32 {
        store
            .insert(MergedListId(0), element(80.0 - i as f64, i, b"meter"))
            .unwrap();
    }
    store.checkpoint().unwrap();
    let elements = store.num_elements();
    drop(store);

    let recovered =
        SpillStore::open(&dir, spill_config(), durable_config(SyncPolicy::Always)).unwrap();
    assert_eq!(recovered.num_elements(), elements);
    assert!(
        recovered.recovered_pages() > 0,
        "checkpointed segments were not recovered from pages"
    );
    assert_eq!(recovered.truncated_wal_records(), 0);
    let _ = fs::remove_dir_all(&root);
}

/// Fixed-size WAL frames for the truncation property:
/// 8 (header) + 8 (seq) + 8 (list) + (8 + 4 + 2 + 4 ciphertext) = 42 bytes.
const FRAME: u64 = 42;
const PREFIX_INSERTS: usize = 8;

/// One case of the kill-at-every-byte WAL truncation property: builds a
/// store whose log holds `PREFIX_INSERTS` equal-sized frames, cuts the log
/// at `cut`, and checks that recovery serves exactly the fully-fitting
/// frames, counts one truncated tail iff the cut lands mid-frame, and
/// still accepts and round-trips new inserts.
fn wal_prefix_case(cut: u64) {
    let index = fixture_index(1, false);
    let root = test_root("wal-prefix");
    let dir = root.join("store");
    let store = SpillStore::create_durable(
        index.clone(),
        &dir,
        1,
        spill_config(),
        durable_config(SyncPolicy::Never),
    )
    .unwrap();
    let oracle = SingleMutexStore::new(index);
    let mut states = vec![oracle.snapshot_list(MergedListId(0)).unwrap()];
    for i in 0..PREFIX_INSERTS as u32 {
        let el = element(50.0 - 3.0 * i as f64, i, &i.to_le_bytes());
        store.insert(MergedListId(0), el.clone()).unwrap();
        oracle.insert(MergedListId(0), el).unwrap();
        states.push(oracle.snapshot_list(MergedListId(0)).unwrap());
    }
    drop(store);
    let wal = dir.join("shard-000.wal");
    assert_eq!(
        fs::metadata(&wal).unwrap().len(),
        PREFIX_INSERTS as u64 * FRAME
    );

    fs::OpenOptions::new()
        .write(true)
        .open(&wal)
        .unwrap()
        .set_len(cut)
        .unwrap();

    let recovered = SpillStore::open(&dir, spill_config(), durable_config(SyncPolicy::Never))
        .unwrap_or_else(|e| panic!("open after cut at byte {cut} failed: {e}"));
    let fitting = (cut / FRAME) as usize;
    let torn = !cut.is_multiple_of(FRAME);
    assert_eq!(
        recovered.snapshot_list(MergedListId(0)).unwrap(),
        states[fitting],
        "cut at byte {cut}"
    );
    assert_eq!(recovered.truncated_wal_records(), u64::from(torn));
    assert!(recovered.verify_ordering());
    assert!(recovered.budget_accounting_is_exact());

    // The truncated store keeps accepting writes durably.
    recovered
        .insert(MergedListId(0), element(0.5, 1, b"tail"))
        .unwrap();
    drop(recovered);
    let reopened =
        SpillStore::open(&dir, spill_config(), durable_config(SyncPolicy::Never)).unwrap();
    assert_eq!(reopened.num_elements(), fitting + 1);
    let _ = fs::remove_dir_all(&root);
}

/// Every cut point is a distinct crash: exhaustively sweep the frame
/// boundaries and their neighbours, then sample the rest randomly.
#[test]
fn wal_truncated_at_frame_boundaries_recovers_fitting_frames() {
    for frame in 0..=PREFIX_INSERTS as u64 {
        let boundary = frame * FRAME;
        wal_prefix_case(boundary);
        if frame > 0 {
            wal_prefix_case(boundary - 1);
            wal_prefix_case(boundary - FRAME / 2);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Satellite 3 — any byte prefix of the WAL recovers exactly the
    /// fully-fitting frames.
    #[test]
    fn wal_truncated_at_any_byte_recovers_fitting_frames(
        cut in 0u64..(PREFIX_INSERTS as u64 * FRAME + 1)
    ) {
        wal_prefix_case(cut);
    }
}
