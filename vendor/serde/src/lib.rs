//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` names in both the trait and the
//! derive-macro namespaces so `use serde::{Deserialize, Serialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. No wire format is
//! implemented — the workspace does all of its own byte-level encoding (see
//! `zerber_index::compress` and `zerber_protocol::message`) and only tags
//! types as serializable for future interop.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the stub).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize<'de>` (no methods in the stub).
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
