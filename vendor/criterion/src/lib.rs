//! Offline stand-in for `criterion`.
//!
//! The registry is unreachable in this environment, so this crate provides
//! the bench-definition surface the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `Throughput`, `BenchmarkId`) and a
//! simple mean-of-N wall-clock measurement instead of criterion's full
//! statistical pipeline. Output is one line per benchmark:
//! `group/name  time: <mean> ns/iter (<throughput>)`.

use std::fmt::Display;
use std::time::Instant;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A benchmark identifier: `"name"`, `format!(..)`, or
/// `BenchmarkId::new(function_name, parameter)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 100 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(&id.into().id, sample_size, None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up, then one timed run over `iters` iterations.
        for _ in 0..self.iters.min(3) {
            std::hint::black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

fn run_one(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        iters: sample_size as u64,
        mean_ns: 0.0,
    };
    f(&mut bencher);
    let per_iter = bencher.mean_ns;
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) if per_iter > 0.0 => {
            format!(
                " ({:.1} MiB/s)",
                bytes as f64 / per_iter * 1e9 / (1 << 20) as f64
            )
        }
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!(" ({:.0} elem/s)", n as f64 / per_iter * 1e9)
        }
        _ => String::new(),
    };
    println!("{id:<50} time: {per_iter:>12.1} ns/iter{rate}");
}

/// Re-export for code that uses `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.throughput(Throughput::Bytes(64));
        group.bench_function("noop", |b| b.iter(|| 2 + 2));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    criterion_group!(
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = sample_bench
    );

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
