//! Offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! The build environment has no registry access, so this crate implements
//! the subset of `rand` the workspace uses: `RngCore` / `Rng` /
//! `SeedableRng`, a deterministic `rngs::StdRng` (SplitMix64), uniform
//! ranges via `gen_range`, and `seq::SliceRandom::shuffle`. Determinism per
//! seed is all the experiments need; this is NOT a cryptographic RNG (the
//! workspace's key material comes from `zerber_crypto`, not from here).

use std::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from the full value domain
/// (the `Standard` distribution in real `rand`).
pub trait StandardSample {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<T: StandardSample, const N: usize> StandardSample for [T; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        std::array::from_fn(|_| T::sample_standard(rng))
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo bias is negligible for the experiment-scale spans
                // used here and keeps the stub branch-free.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = state.to_le_bytes();
        for (i, b) in seed.as_mut().iter_mut().enumerate() {
            *b = bytes[i % 8] ^ (i / 8) as u8;
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = 0x243F_6A88_85A3_08D3u64;
            for chunk in seed.chunks(8) {
                let mut word = [0u8; 8];
                word[..chunk.len()].copy_from_slice(chunk);
                state = state.rotate_left(23).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ u64::from_le_bytes(word);
            }
            Self { state }
        }

        fn seed_from_u64(state: u64) -> Self {
            Self {
                state: state ^ 0x5851_F42D_4C95_7F2D,
            }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait standing in for `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher-Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
