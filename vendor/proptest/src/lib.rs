//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest surface the workspace's property
//! tests use — `proptest! { #![proptest_config(..)] #[test] fn f(x in
//! strategy) {..} }`, `any::<T>()`, range and tuple strategies, and
//! `proptest::collection::vec` — as a deterministic random-input harness.
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the normal assertion message and the (test-name, case-index) pair fully
//! determines the inputs, so failures reproduce exactly.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Run-time configuration: number of random cases per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic per-(test, case) RNG so failures reproduce without a
/// persisted seed file.
pub fn test_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 1 | 1))
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// `proptest`'s `prop_map`: transform sampled values with `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            source: self,
            map: f,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (self.map)(self.source.sample(rng))
    }
}

/// The RNG type threaded through every strategy (referenced by the
/// `prop_oneof!` expansion, which runs in downstream crates that do not
/// depend on `rand` directly).
pub type TestRng = StdRng;

/// A boxed sampling closure, as produced by the `prop_oneof!` arms.
pub type Sampler<T> = Box<dyn Fn(&mut StdRng) -> T>;

/// Strategy behind `prop_oneof!`: samples one of several same-valued
/// strategies with the given relative weights.
pub struct WeightedUnion<T> {
    options: Vec<(u32, Sampler<T>)>,
}

impl<T> WeightedUnion<T> {
    pub fn new(options: Vec<(u32, Sampler<T>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        WeightedUnion { options }
    }
}

impl<T> std::fmt::Debug for WeightedUnion<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WeightedUnion({} arms)", self.options.len())
    }
}

impl<T> Strategy for WeightedUnion<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let total: u32 = self.options.iter().map(|(w, _)| *w).sum();
        let mut pick = rng.gen_range(0..total.max(1));
        for (weight, sampler) in &self.options {
            if pick < *weight {
                return sampler(rng);
            }
            pick -= weight;
        }
        (self.options.last().expect("non-empty").1)(rng)
    }
}

/// Types with a canonical "anything goes" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut StdRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<fn() -> T>);

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_strategy_tuple {
    ($($name:ident . $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A.0, B.1);
impl_strategy_tuple!(A.0, B.1, C.2);
impl_strategy_tuple!(A.0, B.1, C.2, D.3);
impl_strategy_tuple!(A.0, B.1, C.2, D.3, E.4);
impl_strategy_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the property tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// `proptest`'s `prop_oneof!`: weighted choice between strategies that
/// produce the same value type (`weight => strategy` arms).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::WeightedUnion::new(vec![
            $((
                $weight as u32,
                {
                    let __s = $strategy;
                    Box::new(move |rng: &mut $crate::TestRng| $crate::Strategy::sample(&__s, rng))
                        as Box<dyn Fn(&mut $crate::TestRng) -> _>
            },
            )),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($config:expr)
      $(
          $(#[$attr:meta])*
          fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_rng(stringify!($name), __case);
                    $( let $arg = $crate::Strategy::sample(&($strategy), &mut __rng); )*
                    $body
                }
            }
        )*
    };
}

// RngCore is referenced so the re-export surface stays warning-free even
// though only Rng/SeedableRng methods are called directly above.
const _: fn(&mut StdRng) -> u64 = <StdRng as RngCore>::next_u64;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, f in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_of_tuples_respects_lengths(
            v in crate::collection::vec((0u32..10, 0.0f64..1.0), 2..5)
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for (a, b) in v {
                prop_assert!(a < 10);
                prop_assert!((0.0..1.0).contains(&b));
            }
        }

        #[test]
        fn any_arrays_work(bytes in any::<[u8; 12]>(), pair in any::<(usize, u8)>()) {
            prop_assert_eq!(bytes.len(), 12);
            let _ = pair;
        }
    }

    #[test]
    fn same_case_reproduces_same_inputs() {
        use crate::Strategy;
        let strat = crate::collection::vec(0u32..100, 0..10);
        let a = strat.sample(&mut crate::test_rng("t", 5));
        let b = strat.sample(&mut crate::test_rng("t", 5));
        assert_eq!(a, b);
    }
}
