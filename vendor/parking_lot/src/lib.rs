//! Offline stand-in for `parking_lot`, backed by `std::sync` primitives.
//!
//! Exposes the poison-free `lock()` / `read()` / `write()` API the workspace
//! uses. A poisoned std lock (a panic while holding the guard) is treated as
//! fatal and re-panics, which matches parking_lot's "no poisoning" model
//! closely enough for tests and benches.

use std::sync;
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
