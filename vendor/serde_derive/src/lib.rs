//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the two derive macros the workspace uses as no-ops: types stay
//! serializable "by declaration" without generating any code. Swap in the
//! real `serde`/`serde_derive` when a registry is available — no source
//! changes required, only the `vendor/` path deps in the manifests.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
