//! Umbrella crate for the Zerber+R reproduction.
//!
//! Re-exports the public APIs of every workspace crate under one roof so
//! examples, integration tests and downstream users can depend on a single
//! crate:
//!
//! * [`corpus`] — documents, tokenization, statistics, synthetic datasets,
//! * [`index`] — the ordinary (plaintext) inverted-index baseline,
//! * [`crypto`] — SHA-256 / HMAC / HKDF / ChaCha20 / AEAD / group keys,
//! * [`zerber`] — the r-confidential merged index substrate (EDBT 2008),
//! * [`zerber_r`] — the Zerber+R ranking model: RSTF, TRS, ordered index,
//!   server-side top-k (this paper's contribution),
//! * [`store`] — the serving-side storage engine: the `ListStore` trait, the
//!   sharded concurrent store and resumable cursor sessions,
//! * [`protocol`] — the untrusted-server / client query protocol with byte
//!   accounting and the network model of Section 6.6,
//! * [`adversary`] — the attack simulations behind the security evaluation,
//! * [`workload`] — query logs, cost models, evaluation metrics and the
//!   experiment test bed.

pub use zerber_adversary as adversary;
pub use zerber_base as zerber;
pub use zerber_corpus as corpus;
pub use zerber_crypto as crypto;
pub use zerber_index as index;
pub use zerber_protocol as protocol;
pub use zerber_r;
pub use zerber_r as core;
pub use zerber_store as store;
pub use zerber_workload as workload;
